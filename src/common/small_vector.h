#ifndef P4DB_COMMON_SMALL_VECTOR_H_
#define P4DB_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace p4db {

/// Contiguous vector with inline storage for the first N elements and heap
/// fallback beyond. The transaction hot path sizes N to the common case
/// (e.g. 8 ops per YCSB/SmallBank transaction) so steady-state execution
/// never touches the allocator; TPC-C's ~50-op transactions spill to the
/// heap and simply pay what std::vector always paid.
///
/// Iterators are raw pointers, so a SmallVector is a contiguous_range and
/// converts implicitly to std::span — the decode/span-based APIs accept
/// either container.
template <typename T, size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be nonzero");

 public:
  using value_type = T;
  using size_type = size_t;
  using difference_type = ptrdiff_t;
  using reference = T&;
  using const_reference = const T&;
  using pointer = T*;
  using const_pointer = const T*;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept : data_(InlineData()), size_(0), capacity_(N) {}

  explicit SmallVector(size_type count) : SmallVector() { resize(count); }

  SmallVector(size_type count, const T& value) : SmallVector() {
    assign(count, value);
  }

  SmallVector(std::initializer_list<T> init) : SmallVector() {
    assign(init.begin(), init.end());
  }

  template <typename InputIt,
            typename = typename std::iterator_traits<InputIt>::value_type>
  SmallVector(InputIt first, InputIt last) : SmallVector() {
    assign(first, last);
  }

  SmallVector(const SmallVector& other) : SmallVector() {
    assign(other.begin(), other.end());
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    StealFrom(std::move(other));
  }

  ~SmallVector() {
    clear();
    if (!IsInline()) Deallocate(data_);
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      if (!IsInline()) {
        Deallocate(data_);
        data_ = InlineData();
        capacity_ = N;
      }
      StealFrom(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  /// std::vector interop, so call sites migrating container types (tests,
  /// generators) keep working unchanged.
  template <typename A>
  SmallVector& operator=(const std::vector<T, A>& v) {
    assign(v.begin(), v.end());
    return *this;
  }

  void assign(size_type count, const T& value) {
    clear();
    reserve(count);
    std::uninitialized_fill_n(data_, count, value);
    size_ = count;
  }

  template <typename InputIt,
            typename = typename std::iterator_traits<InputIt>::value_type>
  void assign(InputIt first, InputIt last) {
    clear();
    const size_type count =
        static_cast<size_type>(std::distance(first, last));
    reserve(count);
    std::uninitialized_copy(first, last, data_);
    size_ = count;
  }

  // -- Element access --
  reference operator[](size_type i) {
    assert(i < size_);
    return data_[i];
  }
  const_reference operator[](size_type i) const {
    assert(i < size_);
    return data_[i];
  }
  reference front() { return data_[0]; }
  const_reference front() const { return data_[0]; }
  reference back() { return data_[size_ - 1]; }
  const_reference back() const { return data_[size_ - 1]; }
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  // -- Iterators --
  iterator begin() noexcept { return data_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator cbegin() const noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator end() const noexcept { return data_ + size_; }
  const_iterator cend() const noexcept { return data_ + size_; }

  // -- Capacity --
  bool empty() const noexcept { return size_ == 0; }
  size_type size() const noexcept { return size_; }
  size_type capacity() const noexcept { return capacity_; }
  static constexpr size_type inline_capacity() { return N; }

  void reserve(size_type new_cap) {
    if (new_cap > capacity_) Grow(new_cap);
  }

  // -- Modifiers --
  void clear() noexcept {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  reference emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    std::destroy_at(data_ + size_);
  }

  void resize(size_type count) {
    if (count < size_) {
      std::destroy_n(data_ + count, size_ - count);
    } else if (count > size_) {
      reserve(count);
      std::uninitialized_value_construct_n(data_ + size_, count - size_);
    }
    size_ = count;
  }

  void resize(size_type count, const T& value) {
    if (count < size_) {
      std::destroy_n(data_ + count, size_ - count);
    } else if (count > size_) {
      reserve(count);
      std::uninitialized_fill_n(data_ + size_, count - size_, value);
    }
    size_ = count;
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  iterator erase(const_iterator first, const_iterator last) {
    iterator f = const_cast<iterator>(first);
    iterator l = const_cast<iterator>(last);
    const size_type removed = static_cast<size_type>(l - f);
    if (removed != 0) {
      std::move(l, end(), f);
      std::destroy_n(end() - removed, removed);
      size_ -= removed;
    }
    return f;
  }

  iterator insert(const_iterator pos, const T& value) {
    const size_type idx = static_cast<size_type>(pos - begin());
    if (size_ == capacity_) Grow(size_ + 1);
    iterator p = begin() + idx;
    if (p == end()) {
      ::new (static_cast<void*>(p)) T(value);
    } else {
      ::new (static_cast<void*>(end())) T(std::move(back()));
      std::move_backward(p, end() - 1, end());
      *p = value;
    }
    ++size_;
    return p;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  template <typename A>
  friend bool operator==(const SmallVector& a, const std::vector<T, A>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  template <typename A>
  friend bool operator==(const std::vector<T, A>& a, const SmallVector& b) {
    return b == a;
  }

 private:
  T* InlineData() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  bool IsInline() const noexcept {
    return data_ ==
           std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  static T* Allocate(size_type n) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
  }
  static void Deallocate(T* p) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      ::operator delete(p);
    }
  }

  void Grow(size_type min_cap) {
    size_type new_cap = capacity_ * 2;
    if (new_cap < min_cap) new_cap = min_cap;
    T* fresh = Allocate(new_cap);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(static_cast<void*>(fresh), data_, size_ * sizeof(T));
    } else {
      std::uninitialized_move(data_, data_ + size_, fresh);
      std::destroy_n(data_, size_);
    }
    if (!IsInline()) Deallocate(data_);
    data_ = fresh;
    capacity_ = new_cap;
  }

  /// Move-construct from `other`: steal the heap block if it has one, else
  /// move the inline elements. `other` is left empty (inline).
  void StealFrom(SmallVector&& other) noexcept {
    if (other.IsInline()) {
      if constexpr (std::is_trivially_copyable_v<T>) {
        std::memcpy(static_cast<void*>(data_), other.data_,
                    other.size_ * sizeof(T));
      } else {
        std::uninitialized_move(other.data_, other.data_ + other.size_,
                                data_);
        std::destroy_n(other.data_, other.size_);
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  size_type size_;
  size_type capacity_;
};

}  // namespace p4db

#endif  // P4DB_COMMON_SMALL_VECTOR_H_
