#ifndef P4DB_COMMON_RNG_H_
#define P4DB_COMMON_RNG_H_

#include <cstdint>

namespace p4db {

/// Thread-local "who is executing" token for RNG ownership checks. The
/// parallel runtime installs the owning shard's token while that shard's
/// events execute; an Rng bound to a shard asserts (debug builds) that it
/// is only ever drawn from under that token. Legacy single-thread runs
/// leave the token null and every check passes — zero behavior change.
class RngOwnership {
 public:
  static const void*& Current() {
    static thread_local const void* current = nullptr;
    return current;
  }
};

/// Derives the seed for a shard-owned stream from the master seed: every
/// shard gets a statistically independent stream that is a pure function of
/// (seed, shard_id), so parallel runs stay reproducible.
inline uint64_t ShardSeed(uint64_t seed, uint64_t shard_id) {
  uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (shard_id + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Deterministic xoshiro256** PRNG. Every simulated entity owns its own
/// stream (seeded from a master seed + entity id) so that experiments are
/// bit-reproducible regardless of event interleaving. In the parallel
/// runtime streams are additionally bound to their owning shard
/// (BindOwner) and drawing from another shard's stream trips an assert.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Tags this stream as owned by `owner` (the shard token installed via
  /// RngOwnership while that shard executes). Passing nullptr unbinds.
  void BindOwner(const void* owner) { owner_ = owner; }

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextRange(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  static uint64_t SplitMix64(uint64_t* state);
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  const void* owner_ = nullptr;  // null = unowned (legacy / private streams)
};

}  // namespace p4db

#endif  // P4DB_COMMON_RNG_H_
