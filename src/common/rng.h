#ifndef P4DB_COMMON_RNG_H_
#define P4DB_COMMON_RNG_H_

#include <cstdint>

namespace p4db {

/// Deterministic xoshiro256** PRNG. Every simulated entity owns its own
/// stream (seeded from a master seed + entity id) so that experiments are
/// bit-reproducible regardless of event interleaving.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextRange(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  static uint64_t SplitMix64(uint64_t* state);
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace p4db

#endif  // P4DB_COMMON_RNG_H_
