#ifndef P4DB_COMMON_ZIPF_H_
#define P4DB_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace p4db {

/// Zipfian generator over [0, n) with parameter theta, using the
/// Gray et al. rejection-free method popularized by YCSB. Rank 0 is the most
/// popular item.
///
/// Multi-shard note: the generator itself is immutable after construction
/// (Next is const and draws only from the caller's Rng), so one instance is
/// safely shared by all shards. All mutable randomness state lives in the
/// per-shard Rng streams, whose ownership asserts (Rng::BindOwner) catch
/// any shard drawing from another shard's stream.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

/// Hot-set distribution used by the paper's YCSB/SmallBank setups: a small
/// hot-set receives `hot_fraction` of accesses uniformly; the remaining
/// accesses are uniform over the cold residue (Section 7.2).
class HotSetDistribution {
 public:
  HotSetDistribution(uint64_t n, uint64_t hot_size, double hot_fraction)
      : n_(n), hot_size_(hot_size), hot_fraction_(hot_fraction) {}

  /// Returns an index in [0, n). Indexes < hot_size are the hot items.
  uint64_t Next(Rng& rng) const {
    if (hot_size_ > 0 && rng.NextBool(hot_fraction_)) {
      return rng.NextRange(hot_size_);
    }
    if (n_ == hot_size_) return rng.NextRange(n_);
    return hot_size_ + rng.NextRange(n_ - hot_size_);
  }

  bool IsHot(uint64_t index) const { return index < hot_size_; }

 private:
  uint64_t n_;
  uint64_t hot_size_;
  double hot_fraction_;
};

}  // namespace p4db

#endif  // P4DB_COMMON_ZIPF_H_
