#ifndef P4DB_COMMON_JSON_UTIL_H_
#define P4DB_COMMON_JSON_UTIL_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace p4db {

/// Appends `s` to `*out` with JSON string escaping: quote, backslash, and
/// every control character below 0x20 (emitted as \u00XX). Single shared
/// rule for every machine-readable dump (metrics registry, bench harness,
/// trace and time-series exporters) so a hostile metric or scenario name
/// cannot produce unparseable JSON in any of them.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

/// Appends `s` as a complete JSON string literal, quotes included.
inline void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

/// Returns the escaped form of `s` (without surrounding quotes).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace p4db

#endif  // P4DB_COMMON_JSON_UTIL_H_
