#ifndef P4DB_COMMON_METRICS_REGISTRY_H_
#define P4DB_COMMON_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace p4db {

/// Named-metric registry shared by the components of one simulated cluster
/// (Network, Pipeline, LockManager, Wal, Engine). Components register
/// counters/histograms by hierarchical name ("net.messages_sent",
/// "switch.txns_completed", ...) at construction and bump them on the hot
/// path through stable pointers; the bench harness dumps the whole registry
/// as JSON so every run leaves a machine-readable trace.
///
/// Identity semantics: counter(name) is get-or-create — two components
/// registering the same name share one counter (used to aggregate the
/// per-node lock managers / WALs into cluster-wide series). Returned
/// references stay valid for the registry's lifetime.
///
/// Not thread-safe; the simulator is single-threaded.
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Increment(uint64_t delta = 1) { value_ += delta; }
    void Set(uint64_t value) { value_ = value; }
    uint64_t value() const { return value_; }
    void Reset() { value_ = 0; }

   private:
    uint64_t value_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. The reference is stable.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Get-or-create under a two-part name (prefix + name, concatenated at
  /// registration time, never on the hot path). Used for per-instance
  /// keying — "switch1." + "txns_completed" — where the prefix is chosen
  /// once at construction.
  Counter& counter(std::string_view prefix, std::string_view name);
  Histogram& histogram(std::string_view prefix, std::string_view name);

  /// Process-wide discard sinks. Components that mirror their stats into an
  /// *optional* registry point at these when none was supplied, so the hot
  /// path stays an unconditional increment through a stable pointer instead
  /// of a null check and branch per bump. Writes land in a static dummy
  /// nothing ever reads; both are constant-memory, so unbounded traffic is
  /// harmless.
  static Counter& NullCounter() {
    static Counter sink;
    return sink;
  }
  static Histogram& NullHistogram() {
    static Histogram sink;
    return sink;
  }

  /// Lookup without creating; nullptr if absent.
  const Counter* FindCounter(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Zeroes every counter and clears every histogram (names stay
  /// registered). The engine calls this at the start of the measured
  /// window so dumps cover exactly the measurement interval.
  void Reset();

  /// Folds `other` into this registry: counters add, histograms merge,
  /// names absent here are created. The parallel runtime merges the
  /// per-shard registries into the engine's dump registry with this, in
  /// fixed shard order; since std::map keeps names sorted, the resulting
  /// ToJson is a pure function of the merged values.
  void MergeFrom(const MetricsRegistry& other);

  size_t num_counters() const { return counters_.size(); }
  size_t num_histograms() const { return histograms_.size(); }

  /// Serializes the registry as a JSON object:
  ///   {"counters": {"name": value, ...},
  ///    "histograms": {"name": {"count": .., "mean": .., "p50": ..,
  ///                            "p95": .., "p99": .., "max": ..}, ...}}
  /// Keys are sorted (std::map iteration order) so output is diffable.
  std::string ToJson() const;

 private:
  // unique_ptr for stable addresses across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace p4db

#endif  // P4DB_COMMON_METRICS_REGISTRY_H_
