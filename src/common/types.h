#ifndef P4DB_COMMON_TYPES_H_
#define P4DB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace p4db {

/// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000 * 1000 * 1000;

/// Identifier of a database node (0..num_nodes-1). The switch is not a
/// NodeId; it is addressed separately (it is an "additional database node"
/// only at the logical level, Section 3).
using NodeId = uint16_t;

/// Identifier of a worker thread within a node.
using WorkerId = uint16_t;

/// Logical table identifier, assigned at schema registration.
using TableId = uint16_t;

/// Primary key within a table. All benchmark schemas use 64-bit surrogate
/// keys; composite keys are packed (see workload/ schemas).
using Key = uint64_t;

/// A (table, key) pair identifying one tuple in the cluster.
struct TupleId {
  TableId table = 0;
  Key key = 0;

  friend bool operator==(const TupleId& a, const TupleId& b) = default;
  friend auto operator<=>(const TupleId& a, const TupleId& b) = default;
};

/// Tuple values on the switch are 64-bit registers (fixed-point / integer
/// only, Table 1). Host tuples may carry wider payloads; the hot columns
/// mirrored to the switch are always Value64.
using Value64 = int64_t;

/// Globally-unique, switch-assigned serial transaction id (Section 6.1).
/// GIDs define the serial execution order of all switch transactions and are
/// the backbone of switch-state recovery.
using Gid = uint64_t;

constexpr Gid kInvalidGid = 0;

struct TupleIdHash {
  size_t operator()(const TupleId& t) const {
    // Mix table into the high bits; keys are dense per table.
    uint64_t x = (static_cast<uint64_t>(t.table) << 48) ^ t.key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace p4db

template <>
struct std::hash<p4db::TupleId> : p4db::TupleIdHash {};

#endif  // P4DB_COMMON_TYPES_H_
