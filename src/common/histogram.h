#ifndef P4DB_COMMON_HISTOGRAM_H_
#define P4DB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p4db {

/// Log-bucketed latency histogram (nanosecond samples). Buckets grow
/// geometrically, ~4.6% relative error, constant memory. Used by the
/// benchmark harness for the paper's latency plots (Figures 16, 18a).
///
/// 1024 buckets cover the full positive int64 range (16 sub-buckets per
/// power of two; bucket 16*62+15 = 1007 is the last reachable one), so
/// saturated open-loop tails keep log-linear resolution instead of
/// collapsing into a terminal bucket at 2^16 ns = 65 us, which is exactly
/// where an overloaded admission queue parks its victims. Every value
/// below the old ceiling maps to the same bucket index as before the
/// widening — only the previously-clamped tail moved.
class Histogram {
 public:
  static constexpr int kNumBuckets = 1024;

  Histogram();

  void Record(int64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;
  /// q in [0, 1]; returns an approximate quantile (bucket midpoint).
  int64_t Quantile(double q) const;
  /// Named tail helpers for the latency reports. P999 is the deep tail the
  /// open-loop knee benches gate on; with fewer than 1000 samples it decays
  /// gracefully toward max() (the ceil(q*count) rank rule).
  int64_t P50() const { return Quantile(0.50); }
  int64_t P99() const { return Quantile(0.99); }
  int64_t P999() const { return Quantile(0.999); }

  /// Raw bucket access, for time-series snapshots (windowed quantiles are
  /// bucket diffs between ticks) and full-distribution exports.
  uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)];
  }
  /// Smallest value mapped to `bucket` (bucket 0 also absorbs v <= 0).
  static int64_t BucketLowerBound(int bucket);
  /// Exclusive upper bound of `bucket`; INT64_MAX for the last bucket.
  static int64_t BucketUpperBound(int bucket);
  /// Representative midpoint of `bucket` (what Quantile reports).
  static int64_t BucketMid(int bucket);

  /// Calls fn(bucket, lower, upper_exclusive, count) for every non-empty
  /// bucket in ascending value order.
  template <typename Fn>
  void ForEachBucket(Fn&& fn) const {
    for (int i = 0; i < kNumBuckets; ++i) {
      if (buckets_[static_cast<size_t>(i)] != 0) {
        fn(i, BucketLowerBound(i), BucketUpperBound(i),
           buckets_[static_cast<size_t>(i)]);
      }
    }
  }

  /// Appends the non-empty buckets as a JSON array of [lower, upper, count]
  /// triples.
  void AppendBucketsJson(std::string* out) const;

 private:
  static int BucketFor(int64_t value);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace p4db

#endif  // P4DB_COMMON_HISTOGRAM_H_
