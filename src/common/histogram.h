#ifndef P4DB_COMMON_HISTOGRAM_H_
#define P4DB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace p4db {

/// Log-bucketed latency histogram (nanosecond samples). Buckets grow
/// geometrically, ~4.6% relative error, constant memory. Used by the
/// benchmark harness for the paper's latency plots (Figures 16, 18a).
class Histogram {
 public:
  Histogram();

  void Record(int64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;
  /// q in [0, 1]; returns an approximate quantile (bucket midpoint).
  int64_t Quantile(double q) const;

 private:
  static constexpr int kNumBuckets = 256;
  static int BucketFor(int64_t value);
  static int64_t BucketMid(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace p4db

#endif  // P4DB_COMMON_HISTOGRAM_H_
