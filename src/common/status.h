#ifndef P4DB_COMMON_STATUS_H_
#define P4DB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace p4db {

/// Error taxonomy shared by all subsystems. Hot paths signal failure via
/// `Status`/`StatusOr` instead of exceptions so that aborts (a normal event
/// in OLTP under contention) stay cheap and explicit.
enum class Code {
  kOk = 0,
  kAborted,           // Transaction aborted (lock conflict, WAIT_DIE "die").
  kNotFound,          // Key or object does not exist.
  kInvalidArgument,   // Caller bug: malformed request.
  kCapacityExceeded,  // Switch stage/register or queue out of space.
  kConstraintViolation,  // Integrity constraint failed (e.g. balance < 0).
  kUnsupported,          // Operation not expressible on this substrate.
  kUnavailable,          // Dependency down / timed out; retry may succeed.
  kInternal,             // Invariant violation inside the engine.
};

/// Lightweight status object. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg = "") {
    return Status(Code::kCapacityExceeded, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg = "") {
    return Status(Code::kConstraintViolation, std::move(msg));
  }
  static Status Unsupported(std::string msg = "") {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string msg_;
};

/// Result-or-error. `value()` asserts on access when not ok.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

const char* CodeName(Code code);

}  // namespace p4db

#endif  // P4DB_COMMON_STATUS_H_
