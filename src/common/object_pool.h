#ifndef P4DB_COMMON_OBJECT_POOL_H_
#define P4DB_COMMON_OBJECT_POOL_H_

#include <cstddef>
#include <new>

namespace p4db {

/// Size-classed free-list allocator for the simulator's per-transaction
/// short-lived blocks: coroutine frames (Task / CoTask promises) and
/// Future/Promise shared states. Blocks recycle through 64-byte-granular
/// classes up to 4 KiB; the first transaction of each shape pays the
/// operator-new, every later one reuses a block. Oversized requests fall
/// through to plain new/delete (class 0).
///
/// A 16-byte header in front of the payload records the class, keeping the
/// payload max_align_t-aligned. Freed blocks are retained for the process
/// lifetime (they stay reachable through the static free lists, so leak
/// checkers see them).
///
/// The free lists are thread-local: each simulation thread recycles through
/// its own lists with zero synchronization, exactly as fast as the old
/// single-threaded globals. A block allocated on one thread and freed on
/// another (a coroutine frame that migrated shards and died elsewhere)
/// simply joins the freeing thread's list — safe, because every cross-shard
/// handoff in the parallel runtime is separated by a window barrier, which
/// orders the owning thread's writes before any reuse.
class FreePool {
 public:
  static void* Allocate(size_t bytes) {
    const size_t total = bytes + kHeaderBytes;
    const size_t cls = (total + kGranularity - 1) / kGranularity;
    void* raw;
    if (cls >= kNumClasses) {
      raw = ::operator new(total);
      *static_cast<size_t*>(raw) = 0;
    } else {
      void*& head = free_lists_[cls];
      if (head != nullptr) {
        raw = head;
        head = *static_cast<void**>(raw);
      } else {
        raw = ::operator new(cls * kGranularity);
      }
      *static_cast<size_t*>(raw) = cls;
    }
    return static_cast<unsigned char*>(raw) + kHeaderBytes;
  }

  static void Free(void* p) noexcept {
    if (p == nullptr) return;
    void* raw = static_cast<unsigned char*>(p) - kHeaderBytes;
    const size_t cls = *static_cast<size_t*>(raw);
    if (cls == 0) {
      ::operator delete(raw);
      return;
    }
    *static_cast<void**>(raw) = free_lists_[cls];
    free_lists_[cls] = raw;
  }

  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kGranularity = 64;
  static constexpr size_t kNumClasses = 65;  // classes 1..64 => up to 4 KiB

 private:
  static inline thread_local void* free_lists_[kNumClasses] = {};
};

/// Minimal std-compatible allocator over FreePool, for
/// std::allocate_shared of promise shared states (object + control block
/// land in one pooled allocation).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(FreePool::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept { FreePool::Free(p); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace p4db

#endif  // P4DB_COMMON_OBJECT_POOL_H_
