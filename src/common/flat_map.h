#ifndef P4DB_COMMON_FLAT_MAP_H_
#define P4DB_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace p4db {

/// Default hasher for FlatMap: full-avalanche mix for integral keys (the
/// standard library's std::hash<uint64_t> is the identity, which would
/// cluster dense keys in an open-addressed table), std::hash for
/// everything else (TupleId / HotItem already install mixing hashes).
template <typename K>
struct FlatHash {
  size_t operator()(const K& k) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      uint64_t x = static_cast<uint64_t>(k);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      x *= 0xc4ceb9fe1a85ec53ULL;
      x ^= x >> 33;
      return static_cast<size_t>(x);
    } else {
      return std::hash<K>{}(k);
    }
  }
};

/// Open-addressed hash map for trivially-copyable keys and values (the
/// hot-path types: TupleId, HotItem, u64, Value64). Linear probing over a
/// power-of-two slot array, 7/8 maximum load, backward-shift deletion (no
/// tombstones, so lookup cost never degrades with churn). One allocation
/// holds slots and occupancy bytes; InlineSlots > 0 embeds storage for
/// that many slots so small maps (per-transaction read/write sets) never
/// allocate.
///
/// Iteration is in slot order — fully determined by the insertion/erase
/// sequence and the hash function, never by addresses — so seeded runs
/// stay reproducible.
template <typename K, typename V, size_t InlineSlots = 0,
          typename Hash = FlatHash<K>>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_destructible_v<K>,
                "FlatMap keys must be trivial");
  static_assert(std::is_trivially_copyable_v<V> &&
                    std::is_trivially_destructible_v<V>,
                "FlatMap values must be trivial");
  static_assert(InlineSlots == 0 || (InlineSlots & (InlineSlots - 1)) == 0,
                "inline slot count must be a power of two");

 public:
  struct Slot {
    K key;
    V value;
  };

  FlatMap() noexcept {
    if constexpr (InlineSlots > 0) {
      slots_ = InlineSlotData();
      ctrl_ = InlineCtrlData();
      capacity_ = InlineSlots;
      std::memset(ctrl_, 0, InlineSlots);
    }
  }

  FlatMap(const FlatMap& other) : FlatMap() {
    reserve(other.size_);
    for (const Slot& s : other) Insert(s.key, s.value);
  }

  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const Slot& s : other) Insert(s.key, s.value);
    }
    return *this;
  }

  FlatMap(FlatMap&& other) noexcept : FlatMap() { StealFrom(other); }

  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      ResetToInline();
      StealFrom(other);
    }
    return *this;
  }

  ~FlatMap() { ReleaseHeap(); }

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  size_t capacity() const noexcept { return capacity_; }

  void clear() noexcept {
    if (capacity_ != 0) std::memset(ctrl_, 0, capacity_);
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing on the way there.
  void reserve(size_t n) {
    if (n * 8 <= capacity_ * 7) return;
    size_t needed = capacity_ == 0 ? kMinHeapCapacity : capacity_;
    while (n * 8 > needed * 7) needed *= 2;
    Rehash(needed);
  }

  V* find(const K& key) noexcept {
    if (size_ == 0) return nullptr;
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(key) & mask;
    while (ctrl_[i] != 0) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(const K& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(const K& key) const noexcept { return find(key) != nullptr; }

  /// Insert-if-absent (std::unordered_map::try_emplace semantics): returns
  /// {pointer to value, true} on insert, {pointer to existing, false} when
  /// the key is already present.
  std::pair<V*, bool> try_emplace(const K& key, const V& value = V{}) {
    GrowIfNeeded();
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(key) & mask;
    while (ctrl_[i] != 0) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask;
    }
    ctrl_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
    return {&slots_[i].value, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  /// Unconditional assign (insert or overwrite).
  void InsertOrAssign(const K& key, const V& value) {
    *try_emplace(key).first = value;
  }

  /// Removes `key`; returns false if absent. Backward-shift deletion keeps
  /// every remaining probe chain gap-free.
  bool erase(const K& key) noexcept {
    if (size_ == 0) return false;
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(key) & mask;
    while (true) {
      if (ctrl_[i] == 0) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask;
    }
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (ctrl_[j] == 0) break;
      const size_t ideal = Hash{}(slots_[j].key) & mask;
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    ctrl_[i] = 0;
    --size_;
    return true;
  }

  // -- Slot-order iteration --
  template <bool Const>
  class Iter {
   public:
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using SlotT = std::conditional_t<Const, const Slot, Slot>;
    Iter(MapT* map, size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }
    SlotT& operator*() const { return map_->slots_[idx_]; }
    SlotT* operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }

   private:
    void SkipEmpty() {
      while (idx_ < map_->capacity_ && map_->ctrl_[idx_] == 0) ++idx_;
    }
    MapT* map_;
    size_t idx_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() noexcept { return iterator(this, 0); }
  iterator end() noexcept { return iterator(this, capacity_); }
  const_iterator begin() const noexcept { return const_iterator(this, 0); }
  const_iterator end() const noexcept {
    return const_iterator(this, capacity_);
  }

 private:
  static constexpr size_t kMinHeapCapacity = 16;

  // Heap layout: [capacity * Slot][capacity ctrl bytes], one allocation.
  static size_t HeapBytes(size_t cap) { return cap * (sizeof(Slot) + 1); }

  Slot* InlineSlotData() noexcept {
    return reinterpret_cast<Slot*>(inline_storage_);
  }
  uint8_t* InlineCtrlData() noexcept {
    return reinterpret_cast<uint8_t*>(inline_storage_) +
           InlineSlots * sizeof(Slot);
  }
  bool IsInline() const noexcept {
    if constexpr (InlineSlots == 0) {
      return false;
    } else {
      return slots_ ==
             reinterpret_cast<const Slot*>(inline_storage_);
    }
  }

  void GrowIfNeeded() {
    if (capacity_ == 0) {
      Rehash(kMinHeapCapacity);
    } else if ((size_ + 1) * 8 > capacity_ * 7) {
      Rehash(capacity_ * 2);
    }
  }

  /// Probe to the first empty slot; used by rehash (keys are unique).
  void Insert(const K& key, const V& value) {
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(key) & mask;
    while (ctrl_[i] != 0) i = (i + 1) & mask;
    ctrl_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
  }

  void Rehash(size_t new_cap) {
    Slot* old_slots = slots_;
    uint8_t* old_ctrl = ctrl_;
    const size_t old_cap = capacity_;
    const bool old_inline = IsInline();

    void* block = ::operator new(HeapBytes(new_cap),
                                 std::align_val_t(alignof(Slot)));
    slots_ = static_cast<Slot*>(block);
    ctrl_ = reinterpret_cast<uint8_t*>(block) + new_cap * sizeof(Slot);
    std::memset(ctrl_, 0, new_cap);
    capacity_ = new_cap;
    size_ = 0;

    for (size_t i = 0; i < old_cap; ++i) {
      if (old_ctrl[i] != 0) Insert(old_slots[i].key, old_slots[i].value);
    }
    if (old_cap != 0 && !old_inline) {
      ::operator delete(old_slots, std::align_val_t(alignof(Slot)));
    }
  }

  void ReleaseHeap() noexcept {
    if (capacity_ != 0 && !IsInline()) {
      ::operator delete(slots_, std::align_val_t(alignof(Slot)));
    }
  }

  void ResetToInline() noexcept {
    if constexpr (InlineSlots > 0) {
      slots_ = InlineSlotData();
      ctrl_ = InlineCtrlData();
      capacity_ = InlineSlots;
      std::memset(ctrl_, 0, InlineSlots);
    } else {
      slots_ = nullptr;
      ctrl_ = nullptr;
      capacity_ = 0;
    }
    size_ = 0;
  }

  void StealFrom(FlatMap& other) noexcept {
    if (other.IsInline()) {
      // Inline contents are trivially copyable: memcpy the whole block.
      if constexpr (InlineSlots > 0) {
        std::memcpy(inline_storage_, other.inline_storage_,
                    sizeof(inline_storage_));
        size_ = other.size_;
        other.clear();
      }
    } else if (other.capacity_ != 0) {
      slots_ = other.slots_;
      ctrl_ = other.ctrl_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.ResetToInline();
    }
  }

  struct Empty {};
  using InlineStorage =
      std::conditional_t<InlineSlots == 0, Empty,
                         unsigned char[InlineSlots == 0
                                           ? 1
                                           : InlineSlots * (sizeof(Slot) + 1)]>;

  alignas(InlineSlots == 0 ? alignof(Empty)
                           : alignof(Slot)) InlineStorage inline_storage_;
  Slot* slots_ = nullptr;
  uint8_t* ctrl_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Set facade over FlatMap (keys only; the empty value is optimized to one
/// byte of slot padding in practice).
template <typename K, size_t InlineSlots = 0, typename Hash = FlatHash<K>>
class FlatSet {
  struct Unit {};

 public:
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool contains(const K& key) const { return map_.contains(key); }
  bool erase(const K& key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

 private:
  FlatMap<K, Unit, InlineSlots, Hash> map_;
};

}  // namespace p4db

#endif  // P4DB_COMMON_FLAT_MAP_H_
