#include "common/trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <tuple>

#include "common/json_util.h"

namespace p4db::trace {
namespace {

// Dedicated trace_event process for Sampler counter tracks: above every node
// id (and the 0xFFFF switch track) so it can't collide.
constexpr uint32_t kMetricsPid = 0x10000;

// Appends sim-ns as trace_event microseconds ("123.456"): exact decimal,
// no floating point, so exports are byte-deterministic.
void AppendMicros(std::string* out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  *out += buf;
}

}  // namespace

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kTxn: return "txn";
    case Category::kAttempt: return "attempt";
    case Category::kBackoff: return "backoff";
    case Category::kLockWait: return "lock_wait";
    case Category::kValidate: return "validate";
    case Category::kWalAppend: return "wal_append";
    case Category::kSwitchAccess: return "switch_access";
    case Category::kCommit: return "commit";
    case Category::kDegraded: return "degraded_exec";
    case Category::kNetSend: return "net_send";
    case Category::kNetDrop: return "net_drop";
    case Category::kNetDup: return "net_dup";
    case Category::kNetDelaySpike: return "net_delay_spike";
    case Category::kSwitchPass: return "switch_pass";
    case Category::kSwitchRecirc: return "switch_recirc";
    case Category::kSwitchDrop: return "switch_stale_drop";
    case Category::kBatchFlush: return "batch_flush";
    case Category::kAdmission: return "admission_wait";
    case Category::kAdmissionShed: return "admission_shed";
    case Category::kSwitchResidency: return "switch_residency";
    case Category::kIntPostcard: return "int_postcard";
  }
  return "unknown";
}

Tracer::Tracer(const sim::Simulator* sim, size_t flight_capacity)
    : sim_(sim) {
  if (sim_ != nullptr && flight_capacity > 0) {
    ring_.assign(flight_capacity, Record{});
    mode_ = Mode::kFlightRecorder;
  }
}

Tracer& Tracer::Disabled() {
  static Tracer inert(nullptr, 0);
  return inert;
}

void Tracer::EnableFull(size_t capacity) {
  assert(sim_ != nullptr && capacity > 0);
  ring_.assign(capacity, Record{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  mode_ = Mode::kFull;
}

std::vector<Record> Tracer::Snapshot() const {
  std::vector<Record> out;
  out.reserve(size_);
  if (size_ == ring_.size() && size_ > 0) {
    // Wrapped: the oldest record sits at the write head.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(head_));
  } else {
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(size_));
  }
  return out;
}

std::string Tracer::ToChromeJson(const Sampler* sampler,
                                 std::string_view fault_schedule_json) const {
  return ChromeJsonFromRecords(Snapshot(), mode_, size_, dropped_, sampler,
                               fault_schedule_json);
}

std::string Tracer::ChromeJsonFromRecords(
    std::vector<Record> recs, Mode mode, size_t recorded, uint64_t dropped,
    const Sampler* sampler, std::string_view fault_schedule_json) {
  // Global begin-time order gives per-(pid,tid) monotonic ts; ties break
  // longest-first so containing spans precede nested ones in the file.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Record& a, const Record& b) {
                     if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
                     return a.end_ns > b.end_ns;
                   });

  // Greedy interval coloring: per track, pack each transaction (or switch
  // GID) onto the lowest thread lane free at its first record, so concurrent
  // transactions land on distinct lanes and each lane reads as a timeline.
  // Lane 0 is reserved for unattributed records (id 0: multicasts, drops of
  // never-admitted packets).
  using Key = std::tuple<uint16_t, uint8_t, uint64_t>;  // track, keyspace, id
  struct Interval {
    SimTime begin;
    SimTime end;
    size_t first;  // index of first record, for deterministic tie-break
  };
  auto key_of = [](const Record& r) {
    return Key(r.track, (r.flags & kGidKeyFlag) ? 1 : 0, r.txn_id);
  };
  std::map<Key, Interval> intervals;
  for (size_t i = 0; i < recs.size(); ++i) {
    const Key k = key_of(recs[i]);
    auto [it, inserted] =
        intervals.try_emplace(k, Interval{recs[i].begin_ns, recs[i].end_ns, i});
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, recs[i].begin_ns);
      it->second.end = std::max(it->second.end, recs[i].end_ns);
    }
  }
  std::map<uint16_t, std::vector<std::pair<Key, Interval>>> per_track;
  for (const auto& [k, iv] : intervals) per_track[std::get<0>(k)].push_back({k, iv});
  std::map<Key, uint32_t> lane_of;
  for (auto& [track, list] : per_track) {
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) {
                if (a.second.begin != b.second.begin)
                  return a.second.begin < b.second.begin;
                return a.second.first < b.second.first;
              });
    std::vector<SimTime> free_at;  // free_at[lane]; lane 0 = unattributed
    free_at.push_back(std::numeric_limits<SimTime>::max());
    for (const auto& [k, iv] : list) {
      if (std::get<2>(k) == 0) {
        lane_of[k] = 0;
        continue;
      }
      uint32_t lane = 0;
      for (uint32_t l = 1; l < free_at.size(); ++l) {
        if (free_at[l] <= iv.begin) {
          lane = l;
          break;
        }
      }
      if (lane == 0) {
        free_at.push_back(iv.end);
        lane = static_cast<uint32_t>(free_at.size() - 1);
      } else {
        free_at[lane] = iv.end;
      }
      lane_of[k] = lane;
    }
  }

  std::string out;
  out.reserve(recs.size() * 160 + 4096);
  out += "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    out += first ? "\n  " : ",\n  ";
    first = false;
  };

  // Process-name metadata, one process per node/switch track.
  for (const auto& [track, list] : per_track) {
    (void)list;
    char buf[128];
    if (track == kSwitchTrack) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":0,\"args\":{\"name\":\"switch\"}}",
                    track);
    } else if (track >= 0xFF00u) {
      // Replica switches (switch 0 keeps the bare "switch" name above, so
      // single-switch traces are byte-identical to the historical output).
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":0,\"args\":{\"name\":\"switch %u\"}}",
                    track, 0xFFFFu - track);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":0,\"args\":{\"name\":\"node %u\"}}",
                    track, track);
    }
    sep();
    out += buf;
  }
  if (sampler != nullptr && sampler->begun()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"args\":{\"name\":\"metrics\"}}",
                  kMetricsPid);
    sep();
    out += buf;
  }

  char buf[256];
  for (const Record& r : recs) {
    const uint32_t lane = lane_of[key_of(r)];
    sep();
    out += "{\"name\":\"";
    out += CategoryName(r.category);
    out += "\",\"cat\":\"p4db\",\"ph\":\"";
    if (r.flags & kInstantFlag) {
      out += "i\",\"ts\":";
      AppendMicros(&out, r.begin_ns);
      std::snprintf(buf, sizeof(buf),
                    ",\"pid\":%u,\"tid\":%u,\"s\":\"t\",\"args\":{\"txn\":%" PRIu64
                    ",\"aux\":%u}}",
                    r.track, lane, r.txn_id, r.aux);
    } else {
      out += "X\",\"ts\":";
      AppendMicros(&out, r.begin_ns);
      out += ",\"dur\":";
      AppendMicros(&out, r.end_ns - r.begin_ns);
      std::snprintf(buf, sizeof(buf),
                    ",\"pid\":%u,\"tid\":%u,\"args\":{\"txn\":%" PRIu64
                    ",\"attempt\":%u,\"pass\":%u,\"aux\":%u}}",
                    r.track, lane, r.txn_id, r.attempt, r.pass, r.aux);
    }
    out += buf;
  }

  if (sampler != nullptr && sampler->begun()) {
    sampler->AppendChromeCounterEvents(&out, &first);
  }

  out += "\n],\n\"metadata\":{\"mode\":\"";
  out += mode == Mode::kFull          ? "full"
         : mode == Mode::kFlightRecorder ? "flight_recorder"
                                         : "disabled";
  std::snprintf(buf, sizeof(buf),
                "\",\"recorded\":%zu,\"dropped\":%" PRIu64, recorded, dropped);
  out += buf;
  if (!fault_schedule_json.empty()) {
    out += ",\"fault_schedule\":";
    out += fault_schedule_json;
  }
  out += "}}\n";
  return out;
}

bool Tracer::ExportChromeTrace(const std::string& path, const Sampler* sampler,
                               std::string_view fault_schedule_json) const {
  const std::string json = ToChromeJson(sampler, fault_schedule_json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

uint64_t Sampler::Series::CounterSum() const {
  uint64_t v = 0;
  for (const MetricsRegistry::Counter* c : counters) v += c->value();
  return v;
}

uint64_t Sampler::Series::HistCount() const {
  uint64_t v = 0;
  for (const Histogram* h : hists) v += h->count();
  return v;
}

uint64_t Sampler::Series::HistBucket(int i) const {
  uint64_t v = 0;
  for (const Histogram* h : hists) v += h->bucket_count(i);
  return v;
}

void Sampler::AddCounterRate(std::string name,
                             const MetricsRegistry::Counter* c) {
  AddCounterRate(std::move(name),
                 std::vector<const MetricsRegistry::Counter*>{c});
}

void Sampler::AddCounterLevel(std::string name,
                              const MetricsRegistry::Counter* c) {
  AddCounterLevel(std::move(name),
                  std::vector<const MetricsRegistry::Counter*>{c});
}

void Sampler::AddHistogramQuantile(std::string name, const Histogram* h,
                                   double q) {
  AddHistogramQuantile(std::move(name), std::vector<const Histogram*>{h}, q);
}

void Sampler::AddCounterRate(std::string name,
                             std::vector<const MetricsRegistry::Counter*> cs) {
  Series s;
  s.name = std::move(name);
  s.kind = Kind::kRate;
  s.counters = std::move(cs);
  series_.push_back(std::move(s));
}

void Sampler::AddCounterLevel(std::string name,
                              std::vector<const MetricsRegistry::Counter*> cs) {
  Series s;
  s.name = std::move(name);
  s.kind = Kind::kLevel;
  s.counters = std::move(cs);
  series_.push_back(std::move(s));
}

void Sampler::AddHistogramQuantile(std::string name,
                                   std::vector<const Histogram*> hs,
                                   double q) {
  Series s;
  s.name = std::move(name);
  s.kind = Kind::kQuantile;
  s.hists = std::move(hs);
  s.q = std::clamp(q, 0.0, 1.0);
  series_.push_back(std::move(s));
}

void Sampler::BeginCommon(SimTime start, SimTime horizon, SimTime tick) {
  assert(tick > 0);
  start_ = start;
  horizon_ = horizon;
  tick_ = tick;
  begun_ = true;
  const size_t expected =
      static_cast<size_t>((horizon - start) / tick) + 2;
  for (Series& s : series_) {
    s.samples.clear();
    s.samples.reserve(expected);
    switch (s.kind) {
      case Kind::kRate:
        s.last_value = s.CounterSum();
        break;
      case Kind::kLevel:
        break;
      case Kind::kQuantile:
        s.prev_buckets.assign(Histogram::kNumBuckets, 0);
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          s.prev_buckets[static_cast<size_t>(i)] = s.HistBucket(i);
        }
        s.prev_count = s.HistCount();
        break;
    }
  }
  next_ = start_ + tick_;
}

void Sampler::Begin(SimTime start, SimTime horizon, SimTime tick) {
  external_ = false;
  BeginCommon(start, horizon, tick);
  if (next_ <= horizon_) {
    sim_->ScheduleAt(next_, [this] { Tick(); });
  }
}

void Sampler::BeginExternal(SimTime start, SimTime horizon, SimTime tick) {
  external_ = true;
  BeginCommon(start, horizon, tick);
}

void Sampler::TickExternal() {
  assert(begun_ && external_);
  SampleOnce();
}

void Sampler::SampleOnce() {
  for (Series& s : series_) {
    switch (s.kind) {
      case Kind::kRate: {
        const uint64_t cur = s.CounterSum();
        s.samples.push_back(static_cast<int64_t>(cur - s.last_value));
        s.last_value = cur;
        break;
      }
      case Kind::kLevel:
        s.samples.push_back(static_cast<int64_t>(s.CounterSum()));
        break;
      case Kind::kQuantile: {
        const uint64_t total = s.HistCount() - s.prev_count;
        int64_t value = 0;
        if (total > 0) {
          uint64_t target = static_cast<uint64_t>(
              std::ceil(s.q * static_cast<double>(total)));
          target = std::clamp<uint64_t>(target, 1, total);
          uint64_t seen = 0;
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            const uint64_t w =
                s.HistBucket(i) - s.prev_buckets[static_cast<size_t>(i)];
            seen += w;
            if (w > 0 && seen >= target) {
              value = Histogram::BucketMid(i);
              break;
            }
          }
        }
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          s.prev_buckets[static_cast<size_t>(i)] = s.HistBucket(i);
        }
        s.prev_count = s.HistCount();
        s.samples.push_back(value);
        break;
      }
    }
  }
}

void Sampler::Tick() {
  SampleOnce();
  next_ += tick_;
  if (next_ <= horizon_) {
    sim_->ScheduleAt(next_, [this] { Tick(); });
  }
}

size_t Sampler::num_samples() const {
  return series_.empty() ? 0 : series_.front().samples.size();
}

const std::vector<int64_t>* Sampler::Find(std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name == name) return &s.samples;
  }
  return nullptr;
}

std::string Sampler::ToJson() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"tick_ns\": %lld, \"start_ns\": %lld, \"samples\": %zu, "
                "\"series\": {",
                static_cast<long long>(tick_), static_cast<long long>(start_),
                num_samples());
  out += buf;
  bool first_series = true;
  for (const Series& s : series_) {
    out += first_series ? "" : ", ";
    first_series = false;
    AppendJsonString(&out, s.name);
    out += ": [";
    for (size_t i = 0; i < s.samples.size(); ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(s.samples[i]));
      out += buf;
    }
    out += "]";
  }
  out += "}}";
  return out;
}

void Sampler::AppendChromeCounterEvents(std::string* out, bool* first) const {
  char buf[128];
  // Tick-major so ts is monotonic within the metrics process.
  for (size_t k = 0; k < num_samples(); ++k) {
    const SimTime ts = start_ + static_cast<SimTime>(k + 1) * tick_;
    for (const Series& s : series_) {
      if (k >= s.samples.size()) continue;
      *out += *first ? "\n  " : ",\n  ";
      *first = false;
      *out += "{\"name\":";
      AppendJsonString(out, s.name);
      *out += ",\"cat\":\"p4db\",\"ph\":\"C\",\"ts\":";
      AppendMicros(out, ts);
      std::snprintf(buf, sizeof(buf),
                    ",\"pid\":%u,\"tid\":0,\"args\":{\"value\":%lld}}",
                    kMetricsPid, static_cast<long long>(s.samples[k]));
      *out += buf;
    }
  }
}

}  // namespace p4db::trace
