#include "common/status.h"

namespace p4db {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kAborted:
      return "ABORTED";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kCapacityExceeded:
      return "CAPACITY_EXCEEDED";
    case Code::kConstraintViolation:
      return "CONSTRAINT_VIOLATION";
    case Code::kUnsupported:
      return "UNSUPPORTED";
    case Code::kUnavailable:
      return "UNAVAILABLE";
    case Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace p4db
