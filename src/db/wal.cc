#include "db/wal.h"

#include <cassert>
#include <utility>

namespace p4db::db {

Lsn Wal::AppendHostCommit(std::vector<HostLogOp> writes) {
  LogRecord rec;
  rec.lsn = records_.size();
  rec.kind = LogKind::kHostCommit;
  rec.host_writes = std::move(writes);
  if (host_commits_ != nullptr) {
    host_commits_->Increment();
    logged_writes_->Increment(rec.host_writes.size());
  }
  records_.push_back(std::move(rec));
  return records_.back().lsn;
}

Lsn Wal::AppendSwitchIntent(uint32_t client_seq,
                            std::vector<sw::Instruction> instrs) {
  LogRecord rec;
  rec.lsn = records_.size();
  rec.kind = LogKind::kSwitchIntent;
  rec.client_seq = client_seq;
  rec.instrs = std::move(instrs);
  if (switch_intents_ != nullptr) switch_intents_->Increment();
  records_.push_back(std::move(rec));
  return records_.back().lsn;
}

void Wal::FillSwitchResult(Lsn lsn, Gid gid, std::vector<Value64> results) {
  assert(lsn < records_.size());
  LogRecord& rec = records_[lsn];
  assert(rec.kind == LogKind::kSwitchIntent);
  assert(!rec.has_result);
  rec.gid = gid;
  rec.results = std::move(results);
  rec.has_result = true;
}

std::vector<const LogRecord*> Wal::SwitchIntents() const {
  std::vector<const LogRecord*> out;
  for (const LogRecord& rec : records_) {
    if (rec.kind == LogKind::kSwitchIntent) out.push_back(&rec);
  }
  return out;
}

}  // namespace p4db::db
