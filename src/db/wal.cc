#include "db/wal.h"

#include <cassert>

namespace p4db::db {

Lsn Wal::AppendHostCommit(std::span<const HostLogOp> writes) {
  LogRecord rec;
  rec.lsn = records_.size();
  rec.kind = LogKind::kHostCommit;
  rec.host_writes = Persist(writes);
  if (host_commits_ != nullptr) {
    host_commits_->Increment();
    logged_writes_->Increment(rec.host_writes.size());
  }
  records_.push_back(rec);
  return rec.lsn;
}

Lsn Wal::AppendSwitchIntent(uint32_t client_seq,
                            std::span<const sw::Instruction> instrs) {
  LogRecord rec;
  rec.lsn = records_.size();
  rec.kind = LogKind::kSwitchIntent;
  rec.client_seq = client_seq;
  rec.instrs = Persist(instrs);
  if (switch_intents_ != nullptr) switch_intents_->Increment();
  records_.push_back(rec);
  return rec.lsn;
}

void Wal::FillSwitchResult(Lsn lsn, Gid gid,
                           std::span<const Value64> results) {
  assert(lsn < records_.size());
  LogRecord& rec = records_[lsn];
  assert(rec.kind == LogKind::kSwitchIntent);
  assert(!rec.has_result);
  rec.gid = gid;
  rec.results = Persist(results);
  rec.has_result = true;
}

std::vector<const LogRecord*> Wal::SwitchIntents() const {
  std::vector<const LogRecord*> out;
  for (const LogRecord& rec : records_) {
    if (rec.kind == LogKind::kSwitchIntent) out.push_back(&rec);
  }
  return out;
}

}  // namespace p4db::db
