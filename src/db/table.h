#ifndef P4DB_DB_TABLE_H_
#define P4DB_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace p4db::db {

/// Fixed-width numeric row. String columns are dictionary-encoded to
/// integers by the workloads (the same trick the switch needs, Table 1), so
/// one representation serves both substrates.
using Row = std::vector<Value64>;

/// How a table's keys are spread over database nodes (shared-nothing
/// partitioning, Section 7.1).
struct PartitionSpec {
  enum class Kind : uint8_t {
    kRoundRobin,  // owner = key % num_nodes   (YCSB, Section 7.2)
    kRange,       // owner = (key / block) % num_nodes (SmallBank accounts)
    kByHighBits,  // owner = (key >> shift) % num_nodes (TPC-C by warehouse)
    kReplicated,  // read-only reference data; every node owns a copy
  };
  Kind kind = Kind::kRoundRobin;
  uint64_t block = 1;   // kRange block size
  uint32_t shift = 0;   // kByHighBits shift

  NodeId OwnerOf(Key key, uint16_t num_nodes) const {
    switch (kind) {
      case Kind::kRoundRobin:
        return static_cast<NodeId>(key % num_nodes);
      case Kind::kRange:
        return static_cast<NodeId>((key / block) % num_nodes);
      case Kind::kByHighBits:
        return static_cast<NodeId>((key >> shift) % num_nodes);
      case Kind::kReplicated:
        return 0;  // any node can serve it locally; 0 is the canonical copy
    }
    return 0;
  }
};

/// In-memory hash table storing one relation. Rows materialize lazily with
/// schema defaults: benchmark tables are logically huge (YCSB: 10^9 keys)
/// but only touched keys occupy memory.
class Table {
 public:
  Table(TableId id, std::string name, uint16_t num_columns,
        PartitionSpec partition, Row default_row = {});

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  uint16_t num_columns() const { return num_columns_; }
  const PartitionSpec& partition() const { return partition_; }

  /// Row accessor; creates the row with defaults on first touch.
  Row& GetOrCreate(Key key);
  /// Read-only lookup; kNotFound if the row was never materialized.
  const Row* Find(Key key) const;
  bool Contains(Key key) const;
  /// Explicit insert (kInsert op); fails if the key already exists.
  Status Insert(Key key, Row row);

  /// Switches the accessors to mutex-guarded mode for the parallel sharded
  /// runtime: rows materialize lazily, so several shards can race the hash
  /// map itself mid-run. Only the MAP structure is guarded — references
  /// returned by GetOrCreate stay valid across rehashes (node-based map)
  /// and row CONTENT synchronization remains the lock managers' job
  /// (conflicting accesses are serialized by 2PL, and the lock handoff
  /// always crosses a window barrier between shards). Legacy single-thread
  /// runs never take the mutex.
  void EnableConcurrentAccess() { concurrent_ = true; }

  size_t materialized_rows() const { return rows_.size(); }

 private:
  TableId id_;
  std::string name_;
  uint16_t num_columns_;
  PartitionSpec partition_;
  Row default_row_;
  std::unordered_map<Key, Row> rows_;
  bool concurrent_ = false;
  mutable std::mutex mu_;
};

/// Secondary index mapping an alternate key to a primary key. Kept on the
/// database nodes even for hot tuples (Section 6.1: "secondary indexes are
/// supported by keeping them on the database nodes").
class SecondaryIndex {
 public:
  void Put(Key secondary, Key primary) { map_[secondary] = primary; }
  StatusOr<Key> Lookup(Key secondary) const {
    auto it = map_.find(secondary);
    if (it == map_.end()) return Status::NotFound("secondary key");
    return it->second;
  }
  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<Key, Key> map_;
};

/// The cluster's schema and storage. In the simulator all node partitions
/// live in one address space; ownership (which node pays local vs. remote
/// access cost and whose lock table guards a tuple) is defined by each
/// table's PartitionSpec.
class Catalog {
 public:
  explicit Catalog(uint16_t num_nodes) : num_nodes_(num_nodes) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  TableId CreateTable(std::string name, uint16_t num_columns,
                      PartitionSpec partition, Row default_row = {});
  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  size_t num_tables() const { return tables_.size(); }

  SecondaryIndex& CreateSecondaryIndex(std::string name);

  /// Arms mutex-guarded access on every table (see
  /// Table::EnableConcurrentAccess). Called by the engine when the parallel
  /// sharded runtime starts.
  void EnableConcurrentAccess() {
    for (auto& t : tables_) t->EnableConcurrentAccess();
  }

  NodeId OwnerOf(const TupleId& t) const {
    return tables_[t.table]->partition().OwnerOf(t.key, num_nodes_);
  }
  /// Replicated (read-only reference) tables are served locally on every
  /// node: no locks, no remote access, never distributed.
  bool IsReplicated(TableId id) const {
    return tables_[id]->partition().kind ==
           PartitionSpec::Kind::kReplicated;
  }
  uint16_t num_nodes() const { return num_nodes_; }

 private:
  uint16_t num_nodes_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
};

}  // namespace p4db::db

#endif  // P4DB_DB_TABLE_H_
