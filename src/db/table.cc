#include "db/table.h"

#include <cassert>
#include <utility>

namespace p4db::db {

Table::Table(TableId id, std::string name, uint16_t num_columns,
             PartitionSpec partition, Row default_row)
    : id_(id),
      name_(std::move(name)),
      num_columns_(num_columns),
      partition_(partition),
      default_row_(std::move(default_row)) {
  if (default_row_.empty()) default_row_.assign(num_columns_, 0);
  assert(default_row_.size() == num_columns_);
}

Row& Table::GetOrCreate(Key key) {
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = rows_.try_emplace(key, default_row_);
    return it->second;
  }
  auto [it, inserted] = rows_.try_emplace(key, default_row_);
  return it->second;
}

const Row* Table::Find(Key key) const {
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rows_.find(key);
    return it == rows_.end() ? nullptr : &it->second;
  }
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool Table::Contains(Key key) const {
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.contains(key);
  }
  return rows_.contains(key);
}

Status Table::Insert(Key key, Row row) {
  assert(row.size() == num_columns_);
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = rows_.try_emplace(key, std::move(row));
    if (!inserted) return Status::InvalidArgument("duplicate primary key");
    return Status::Ok();
  }
  auto [it, inserted] = rows_.try_emplace(key, std::move(row));
  if (!inserted) return Status::InvalidArgument("duplicate primary key");
  return Status::Ok();
}

TableId Catalog::CreateTable(std::string name, uint16_t num_columns,
                             PartitionSpec partition, Row default_row) {
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(
      id, std::move(name), num_columns, partition, std::move(default_row)));
  return id;
}

SecondaryIndex& Catalog::CreateSecondaryIndex(std::string /*name*/) {
  indexes_.push_back(std::make_unique<SecondaryIndex>());
  return *indexes_.back();
}

}  // namespace p4db::db
