#ifndef P4DB_DB_WAL_H_
#define P4DB_DB_WAL_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/metrics_registry.h"
#include "common/types.h"
#include "switchsim/instruction.h"

namespace p4db::db {

using Lsn = uint64_t;

/// One logged host-side write (cold tuples).
struct HostLogOp {
  TupleId tuple;
  uint16_t column = 0;
  Value64 new_value = 0;
};

/// Kinds of log records (Section 6.1 "Durability and Recovery").
enum class LogKind : uint8_t {
  /// Commit of the cold part of a transaction.
  kHostCommit,
  /// Intent record for a switch (sub-)transaction. Written BEFORE the
  /// packet is sent: "a switch transaction and its intended read-/write-
  /// operations are appended to the log before the switch transaction is
  /// sent" — switch transactions count as committed at send time because
  /// they can no longer abort.
  kSwitchIntent,
};

/// A log record's payload lives in the owning Wal's arena (appended data is
/// immutable, exactly like bytes on disk); the record itself only carries
/// spans. This turns the old three-vectors-per-record layout into one bump
/// append, so logging a commit costs zero allocations in steady state.
struct LogRecord {
  Lsn lsn = 0;
  LogKind kind = LogKind::kHostCommit;

  // kHostCommit payload.
  std::span<const HostLogOp> host_writes;

  // kSwitchIntent payload: the exact instructions sent to the switch.
  uint32_t client_seq = 0;
  std::span<const sw::Instruction> instrs;
  /// Filled in when the switch response arrives. A record with
  /// gid == kInvalidGid after a crash is an in-flight switch transaction:
  /// executed-but-unacknowledged (or never admitted) — recovery must place
  /// it using read/write-set dependencies (Appendix A.3, Scenario 1).
  Gid gid = kInvalidGid;
  /// Result values of the read/write operations, recorded with the gid.
  std::span<const Value64> results;
  bool has_result = false;
};

/// Per-node write-ahead log. In-memory but modeled as durable: a simulated
/// node crash loses no appended record, only the chance to ever fill in
/// gids of in-flight switch transactions.
class Wal {
 public:
  /// `metrics` (optional) is the cluster registry; appends are published as
  /// "wal.host_commits" / "wal.switch_intents" / "wal.logged_writes"
  /// counters, aggregated across all node WALs of the cluster.
  explicit Wal(MetricsRegistry* metrics = nullptr) {
    if (metrics != nullptr) {
      host_commits_ = &metrics->counter("wal.host_commits");
      switch_intents_ = &metrics->counter("wal.switch_intents");
      logged_writes_ = &metrics->counter("wal.logged_writes");
    }
  }
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Pre-sizes the record index and the payload arena so a bounded
  /// benchmark window appends without touching the allocator.
  void Reserve(size_t records, size_t payload_bytes) {
    records_.reserve(records);
    payload_.Reserve(payload_bytes);
  }

  Lsn AppendHostCommit(std::span<const HostLogOp> writes);
  Lsn AppendHostCommit(std::initializer_list<HostLogOp> writes) {
    return AppendHostCommit(std::span<const HostLogOp>(writes.begin(),
                                                       writes.size()));
  }
  Lsn AppendSwitchIntent(uint32_t client_seq,
                         std::span<const sw::Instruction> instrs);
  Lsn AppendSwitchIntent(uint32_t client_seq,
                         std::initializer_list<sw::Instruction> instrs) {
    return AppendSwitchIntent(
        client_seq,
        std::span<const sw::Instruction>(instrs.begin(), instrs.size()));
  }
  /// Records the switch response (gid + read/write results) for the intent
  /// at `lsn`.
  void FillSwitchResult(Lsn lsn, Gid gid, std::span<const Value64> results);
  void FillSwitchResult(Lsn lsn, Gid gid,
                        std::initializer_list<Value64> results) {
    FillSwitchResult(lsn, gid,
                     std::span<const Value64>(results.begin(),
                                              results.size()));
  }

  const std::vector<LogRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// All switch-intent records, in append order (recovery input).
  std::vector<const LogRecord*> SwitchIntents() const;

 private:
  /// Copies a payload into the arena and returns a view of the stable copy.
  template <typename T>
  std::span<const T> Persist(std::span<const T> src) {
    if (src.empty()) return {};
    T* dst = payload_.AllocateArray<T>(src.size());
    std::copy(src.begin(), src.end(), dst);
    return {dst, src.size()};
  }

  std::vector<LogRecord> records_;
  Arena payload_;
  MetricsRegistry::Counter* host_commits_ = nullptr;
  MetricsRegistry::Counter* switch_intents_ = nullptr;
  MetricsRegistry::Counter* logged_writes_ = nullptr;
};

}  // namespace p4db::db

#endif  // P4DB_DB_WAL_H_
