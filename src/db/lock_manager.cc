#include "db/lock_manager.h"

#include <cassert>
#include <utility>

namespace p4db::db {

namespace {

sim::Future<Status> Ready(sim::Simulator* sim, Status s) {
  sim::Promise<Status> p(sim);
  auto f = p.future();
  p.Set(std::move(s));
  return f;
}

// Hot-path abort statuses carry no message: abort is a normal event under
// contention and building a std::string per denial would put the allocator
// back on the hot path. The code alone identifies the cause.
Status AbortStatus() { return Status(Code::kAborted); }

}  // namespace

// ------------------------------------------------------------ node pools --

uint32_t LockManager::AllocHolder() {
  if (holder_free_ != kNil) {
    const uint32_t idx = holder_free_;
    holder_free_ = holder_pool_[idx].next;
    return idx;
  }
  holder_pool_.emplace_back();
  return static_cast<uint32_t>(holder_pool_.size() - 1);
}

void LockManager::FreeHolder(uint32_t idx) {
  holder_pool_[idx].next = holder_free_;
  holder_free_ = idx;
}

uint32_t LockManager::AllocWaiter() {
  if (waiter_free_ != kNil) {
    const uint32_t idx = waiter_free_;
    waiter_free_ = waiter_pool_[idx].next;
    return idx;
  }
  waiter_pool_.emplace_back();
  return static_cast<uint32_t>(waiter_pool_.size() - 1);
}

void LockManager::FreeWaiter(uint32_t idx) {
  // Drop the shared state so a pooled node keeps nothing alive.
  waiter_pool_[idx].promise = sim::Promise<Status>();
  waiter_pool_[idx].next = waiter_free_;
  waiter_free_ = idx;
}

uint32_t LockManager::AllocHeld() {
  if (held_free_ != kNil) {
    const uint32_t idx = held_free_;
    held_free_ = held_pool_[idx].next;
    return idx;
  }
  held_pool_.emplace_back();
  return static_cast<uint32_t>(held_pool_.size() - 1);
}

void LockManager::FreeHeld(uint32_t idx) {
  held_pool_[idx].next = held_free_;
  held_free_ = idx;
}

void LockManager::PushHolder(Entry& entry, uint64_t txn_id, uint64_t ts,
                             LockMode mode) {
  const uint32_t idx = AllocHolder();
  holder_pool_[idx] = Holder{txn_id, ts, mode, entry.holders};
  entry.holders = idx;
}

void LockManager::RemoveHolder(Entry& entry, uint64_t txn_id) {
  uint32_t prev = kNil;
  uint32_t cur = entry.holders;
  while (cur != kNil) {
    const uint32_t next = holder_pool_[cur].next;
    if (holder_pool_[cur].txn_id == txn_id) {
      if (prev == kNil) {
        entry.holders = next;
      } else {
        holder_pool_[prev].next = next;
      }
      FreeHolder(cur);
    } else {
      prev = cur;
    }
    cur = next;
  }
}

void LockManager::HeldAppend(uint64_t txn_id, TupleId tuple) {
  const uint32_t idx = AllocHeld();
  held_pool_[idx] = HeldNode{tuple, kNil};
  HeldList& list = held_[txn_id];
  if (list.tail == kNil) {
    list.head = idx;
  } else {
    held_pool_[list.tail].next = idx;
  }
  list.tail = idx;
}

// -------------------------------------------------------------- protocol --

bool LockManager::Compatible(const Entry& entry, uint64_t txn_id,
                             LockMode mode) const {
  for (uint32_t i = entry.holders; i != kNil; i = holder_pool_[i].next) {
    const Holder& h = holder_pool_[i];
    if (h.txn_id == txn_id) continue;
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

sim::Future<Status> LockManager::Acquire(uint64_t txn_id, uint64_t ts,
                                         TupleId tuple, LockMode mode) {
  Count(&stats_.acquisitions, mirror_.acquisitions);
  Entry& entry = table_[tuple];

  // Re-acquisition / upgrade detection.
  uint32_t mine = kNil;
  for (uint32_t i = entry.holders; i != kNil; i = holder_pool_[i].next) {
    if (holder_pool_[i].txn_id == txn_id) {
      mine = i;
      break;
    }
  }
  if (mine != kNil) {
    if (mode == LockMode::kShared ||
        holder_pool_[mine].mode == LockMode::kExclusive) {
      Count(&stats_.immediate_grants, mirror_.immediate_grants);
      return Ready(sim_, Status::Ok());  // already sufficient
    }
    // Shared -> exclusive upgrade: judged against the OTHER holders only.
    if (Compatible(entry, txn_id, LockMode::kExclusive)) {
      holder_pool_[mine].mode = LockMode::kExclusive;
      Count(&stats_.upgrades, mirror_.upgrades);
      Count(&stats_.immediate_grants, mirror_.immediate_grants);
      return Ready(sim_, Status::Ok());
    }
    if (scheme_ == CcScheme::kNoWait) {
      Count(&stats_.no_wait_aborts, mirror_.no_wait_aborts);
      return Ready(sim_, AbortStatus());  // upgrade denied (NO_WAIT)
    }
    // WAIT_DIE: wait only if older than every other holder.
    for (uint32_t i = entry.holders; i != kNil; i = holder_pool_[i].next) {
      const Holder& h = holder_pool_[i];
      if (h.txn_id != txn_id && h.ts <= ts) {
        Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
        return Ready(sim_, AbortStatus());  // upgrade died (WAIT_DIE)
      }
    }
    Count(&stats_.waits, mirror_.waits);
    const uint32_t idx = AllocWaiter();
    Waiter& w = waiter_pool_[idx];
    w.txn_id = txn_id;
    w.ts = ts;
    w.mode = LockMode::kExclusive;
    w.upgrade = true;
    w.promise = sim::Promise<Status>(sim_);
    auto f = w.promise.future();
    w.next = entry.waiters_head;  // upgraders jump the queue
    entry.waiters_head = idx;
    if (entry.waiters_tail == kNil) entry.waiters_tail = idx;
    return f;
  }

  // Fresh request: conflicts consider holders and any queued waiter (FIFO
  // fairness: nobody overtakes a queued incompatible waiter, so writers
  // cannot starve behind a stream of readers).
  const bool conflict =
      !Compatible(entry, txn_id, mode) || entry.waiters_head != kNil;
  if (!conflict) {
    PushHolder(entry, txn_id, ts, mode);
    HeldAppend(txn_id, tuple);
    Count(&stats_.immediate_grants, mirror_.immediate_grants);
    return Ready(sim_, Status::Ok());
  }

  if (scheme_ == CcScheme::kNoWait) {
    Count(&stats_.no_wait_aborts, mirror_.no_wait_aborts);
    return Ready(sim_, AbortStatus());  // lock denied (NO_WAIT)
  }

  // WAIT_DIE: may wait only if strictly older than every conflicting
  // transaction (holders and queued waiters).
  for (uint32_t i = entry.holders; i != kNil; i = holder_pool_[i].next) {
    const Holder& h = holder_pool_[i];
    if (h.txn_id != txn_id && h.ts <= ts) {
      Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
      return Ready(sim_, AbortStatus());  // died on holder (WAIT_DIE)
    }
  }
  for (uint32_t i = entry.waiters_head; i != kNil; i = waiter_pool_[i].next) {
    const Waiter& w = waiter_pool_[i];
    const bool incompatible =
        mode == LockMode::kExclusive || w.mode == LockMode::kExclusive;
    if (incompatible && w.txn_id != txn_id && w.ts <= ts) {
      Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
      return Ready(sim_, AbortStatus());  // died on waiter (WAIT_DIE)
    }
  }
  Count(&stats_.waits, mirror_.waits);
  const uint32_t idx = AllocWaiter();
  Waiter& w = waiter_pool_[idx];
  w.txn_id = txn_id;
  w.ts = ts;
  w.mode = mode;
  w.upgrade = false;
  w.promise = sim::Promise<Status>(sim_);
  auto f = w.promise.future();
  w.next = kNil;
  if (entry.waiters_tail == kNil) {
    entry.waiters_head = idx;
  } else {
    waiter_pool_[entry.waiters_tail].next = idx;
  }
  entry.waiters_tail = idx;
  return f;
}

void LockManager::GrantWaiters(TupleId tuple, Entry& entry) {
  while (entry.waiters_head != kNil) {
    const uint32_t widx = entry.waiters_head;
    LockMode granted;
    {
      Waiter& w = waiter_pool_[widx];
      if (w.upgrade) {
        // Grantable once the upgrader is the sole holder.
        uint32_t mine = kNil;
        bool others = false;
        for (uint32_t i = entry.holders; i != kNil;
             i = holder_pool_[i].next) {
          if (holder_pool_[i].txn_id == w.txn_id) {
            mine = i;
          } else {
            others = true;
          }
        }
        if (others) return;
        assert(mine != kNil && "upgrader lost its shared lock");
        holder_pool_[mine].mode = LockMode::kExclusive;
        Count(&stats_.upgrades, mirror_.upgrades);
        granted = LockMode::kExclusive;
      } else {
        if (!Compatible(entry, w.txn_id, w.mode)) return;
        PushHolder(entry, w.txn_id, w.ts, w.mode);
        HeldAppend(w.txn_id, tuple);
        granted = w.mode;
      }
    }
    // Re-resolve: PushHolder/HeldAppend never touch waiter_pool_, but keep
    // the access pattern obviously safe against future pool growth.
    Waiter& w = waiter_pool_[widx];
    w.promise.Set(Status::Ok());
    entry.waiters_head = w.next;
    if (entry.waiters_head == kNil) entry.waiters_tail = kNil;
    FreeWaiter(widx);
    if (granted == LockMode::kExclusive) return;
  }
}

void LockManager::ReleaseInEntry(uint64_t txn_id, TupleId tuple) {
  Entry* entry = table_.find(tuple);
  if (entry == nullptr) return;
  RemoveHolder(*entry, txn_id);
  GrantWaiters(tuple, *entry);
  if (entry->holders == kNil && entry->waiters_head == kNil) {
    table_.erase(tuple);
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  HeldList* list = held_.find(txn_id);
  if (list == nullptr) return;
  uint32_t cur = list->head;
  held_.erase(txn_id);  // GrantWaiters may insert into held_; detach first
  while (cur != kNil) {
    const TupleId tuple = held_pool_[cur].tuple;
    const uint32_t next = held_pool_[cur].next;
    FreeHeld(cur);
    ReleaseInEntry(txn_id, tuple);
    cur = next;
  }
}

void LockManager::ReleaseOne(uint64_t txn_id, TupleId tuple) {
  HeldList* list = held_.find(txn_id);
  if (list == nullptr) return;
  uint32_t prev = kNil;
  uint32_t cur = list->head;
  while (cur != kNil && !(held_pool_[cur].tuple == tuple)) {
    prev = cur;
    cur = held_pool_[cur].next;
  }
  if (cur == kNil) return;
  const uint32_t next = held_pool_[cur].next;
  if (prev == kNil) {
    list->head = next;
  } else {
    held_pool_[prev].next = next;
  }
  if (list->tail == cur) list->tail = prev;
  FreeHeld(cur);
  if (list->head == kNil) held_.erase(txn_id);

  ReleaseInEntry(txn_id, tuple);
}

size_t LockManager::HeldBy(uint64_t txn_id) const {
  const HeldList* list = held_.find(txn_id);
  if (list == nullptr) return 0;
  size_t n = 0;
  for (uint32_t i = list->head; i != kNil; i = held_pool_[i].next) ++n;
  return n;
}

bool LockManager::IsLocked(TupleId tuple) const {
  const Entry* entry = table_.find(tuple);
  return entry != nullptr && entry->holders != kNil;
}

}  // namespace p4db::db
