#include "db/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace p4db::db {

namespace {

sim::Future<Status> Ready(sim::Simulator* sim, Status s) {
  sim::Promise<Status> p(sim);
  auto f = p.future();
  p.Set(std::move(s));
  return f;
}

}  // namespace

bool LockManager::Compatible(const Entry& entry, uint64_t txn_id,
                             LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn_id == txn_id) continue;
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

sim::Future<Status> LockManager::Acquire(uint64_t txn_id, uint64_t ts,
                                         TupleId tuple, LockMode mode) {
  Count(&stats_.acquisitions, mirror_.acquisitions);
  Entry& entry = table_[tuple];

  // Re-acquisition / upgrade detection.
  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn_id == txn_id) {
      mine = &h;
      break;
    }
  }
  if (mine != nullptr) {
    if (mode == LockMode::kShared || mine->mode == LockMode::kExclusive) {
      Count(&stats_.immediate_grants, mirror_.immediate_grants);
      return Ready(sim_, Status::Ok());  // already sufficient
    }
    // Shared -> exclusive upgrade: judged against the OTHER holders only.
    if (Compatible(entry, txn_id, LockMode::kExclusive)) {
      mine->mode = LockMode::kExclusive;
      Count(&stats_.upgrades, mirror_.upgrades);
      Count(&stats_.immediate_grants, mirror_.immediate_grants);
      return Ready(sim_, Status::Ok());
    }
    if (scheme_ == CcScheme::kNoWait) {
      Count(&stats_.no_wait_aborts, mirror_.no_wait_aborts);
      return Ready(sim_, Status::Aborted("upgrade denied (NO_WAIT)"));
    }
    // WAIT_DIE: wait only if older than every other holder.
    for (const Holder& h : entry.holders) {
      if (h.txn_id != txn_id && h.ts <= ts) {
        Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
        return Ready(sim_, Status::Aborted("upgrade died (WAIT_DIE)"));
      }
    }
    Count(&stats_.waits, mirror_.waits);
    Waiter w{txn_id, ts, LockMode::kExclusive, /*upgrade=*/true,
             sim::Promise<Status>(sim_)};
    auto f = w.promise.future();
    entry.waiters.push_front(std::move(w));  // upgraders jump the queue
    return f;
  }

  // Fresh request: conflicts consider holders and any queued waiter (FIFO
  // fairness: nobody overtakes a queued incompatible waiter, so writers
  // cannot starve behind a stream of readers).
  const bool conflict =
      !Compatible(entry, txn_id, mode) || !entry.waiters.empty();
  if (!conflict) {
    entry.holders.push_back(Holder{txn_id, ts, mode});
    held_[txn_id].push_back(tuple);
    Count(&stats_.immediate_grants, mirror_.immediate_grants);
    return Ready(sim_, Status::Ok());
  }

  if (scheme_ == CcScheme::kNoWait) {
    Count(&stats_.no_wait_aborts, mirror_.no_wait_aborts);
    return Ready(sim_, Status::Aborted("lock denied (NO_WAIT)"));
  }

  // WAIT_DIE: may wait only if strictly older than every conflicting
  // transaction (holders and queued waiters).
  for (const Holder& h : entry.holders) {
    if (h.txn_id != txn_id && h.ts <= ts) {
      Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
      return Ready(sim_, Status::Aborted("died on holder (WAIT_DIE)"));
    }
  }
  for (const Waiter& w : entry.waiters) {
    const bool incompatible =
        mode == LockMode::kExclusive || w.mode == LockMode::kExclusive;
    if (incompatible && w.txn_id != txn_id && w.ts <= ts) {
      Count(&stats_.wait_die_aborts, mirror_.wait_die_aborts);
      return Ready(sim_, Status::Aborted("died on waiter (WAIT_DIE)"));
    }
  }
  Count(&stats_.waits, mirror_.waits);
  Waiter w{txn_id, ts, mode, /*upgrade=*/false, sim::Promise<Status>(sim_)};
  auto f = w.promise.future();
  entry.waiters.push_back(std::move(w));
  return f;
}

void LockManager::GrantWaiters(TupleId tuple, Entry& entry) {
  while (!entry.waiters.empty()) {
    Waiter& w = entry.waiters.front();
    if (w.upgrade) {
      // Grantable once the upgrader is the sole holder.
      Holder* mine = nullptr;
      bool others = false;
      for (Holder& h : entry.holders) {
        if (h.txn_id == w.txn_id) {
          mine = &h;
        } else {
          others = true;
        }
      }
      if (others) return;
      assert(mine != nullptr && "upgrader lost its shared lock");
      mine->mode = LockMode::kExclusive;
      Count(&stats_.upgrades, mirror_.upgrades);
    } else {
      if (!Compatible(entry, w.txn_id, w.mode)) return;
      entry.holders.push_back(Holder{w.txn_id, w.ts, w.mode});
      held_[w.txn_id].push_back(tuple);
    }
    w.promise.Set(Status::Ok());
    entry.waiters.pop_front();
    if (entry.holders.back().mode == LockMode::kExclusive) return;
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  auto it = held_.find(txn_id);
  if (it == held_.end()) return;
  std::vector<TupleId> tuples = std::move(it->second);
  held_.erase(it);
  for (const TupleId& tuple : tuples) {
    auto eit = table_.find(tuple);
    if (eit == table_.end()) continue;
    Entry& entry = eit->second;
    std::erase_if(entry.holders,
                  [txn_id](const Holder& h) { return h.txn_id == txn_id; });
    GrantWaiters(tuple, entry);
    if (entry.holders.empty() && entry.waiters.empty()) {
      table_.erase(eit);
    }
  }
}

void LockManager::ReleaseOne(uint64_t txn_id, TupleId tuple) {
  auto it = held_.find(txn_id);
  if (it == held_.end()) return;
  auto& tuples = it->second;
  auto tit = std::find(tuples.begin(), tuples.end(), tuple);
  if (tit == tuples.end()) return;
  tuples.erase(tit);
  if (tuples.empty()) held_.erase(it);

  auto eit = table_.find(tuple);
  if (eit == table_.end()) return;
  Entry& entry = eit->second;
  std::erase_if(entry.holders,
                [txn_id](const Holder& h) { return h.txn_id == txn_id; });
  GrantWaiters(tuple, entry);
  if (entry.holders.empty() && entry.waiters.empty()) table_.erase(eit);
}

size_t LockManager::HeldBy(uint64_t txn_id) const {
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

bool LockManager::IsLocked(TupleId tuple) const {
  auto it = table_.find(tuple);
  return it != table_.end() && !it->second.holders.empty();
}

}  // namespace p4db::db
