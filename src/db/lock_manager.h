#ifndef P4DB_DB_LOCK_MANAGER_H_
#define P4DB_DB_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace p4db::db {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Deadlock-prevention flavors of 2PL implemented by the host DBMS
/// (Section 7.1): NO_WAIT aborts on any denied request; WAIT_DIE lets a
/// transaction wait only if it is older than every conflicting transaction,
/// otherwise it aborts ("dies").
enum class CcScheme : uint8_t { kNoWait, kWaitDie };

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t no_wait_aborts = 0;
  uint64_t wait_die_aborts = 0;
  uint64_t upgrades = 0;
};

/// Per-node pessimistic lock table. One instance guards one node's
/// partition; remote transactions reach it after paying network latency.
///
/// Coroutine integration: Acquire returns a future that resolves to
/// kOk (granted) or kAborted (deadlock prevention). A transaction waits on
/// at most one lock at a time (the executor acquires sequentially), so no
/// cancellation path is needed: every enqueued waiter is eventually granted
/// because WAIT_DIE waits-for chains are strictly ordered by timestamp.
class LockManager {
 public:
  LockManager(sim::Simulator* sim, CcScheme scheme)
      : sim_(sim), scheme_(scheme) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests a lock for transaction (txn_id, ts). ts is the WAIT_DIE
  /// priority: smaller = older = wins. Re-acquisition by a holder is a
  /// no-op grant; shared->exclusive upgrades are supported and are
  /// evaluated against the other holders only (upgraders go to the front
  /// of the wait queue to stay deadlock-free).
  sim::Future<Status> Acquire(uint64_t txn_id, uint64_t ts, TupleId tuple,
                              LockMode mode);

  /// Releases every lock held by txn_id and hands freed locks to waiters.
  void ReleaseAll(uint64_t txn_id);

  /// Releases one specific lock early (Chiller-style early release of
  /// contended items, Figure 18b). No-op if txn_id does not hold it.
  void ReleaseOne(uint64_t txn_id, TupleId tuple);

  /// Number of locks txn_id currently holds (testing/diagnostics).
  size_t HeldBy(uint64_t txn_id) const;
  bool IsLocked(TupleId tuple) const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats(); }
  CcScheme scheme() const { return scheme_; }

 private:
  struct Holder {
    uint64_t txn_id;
    uint64_t ts;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn_id;
    uint64_t ts;
    LockMode mode;
    bool upgrade;
    sim::Promise<Status> promise;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  /// Grants as many front waiters as compatibility allows (FIFO; stops at
  /// the first incompatible waiter so writers cannot starve).
  void GrantWaiters(TupleId tuple, Entry& entry);
  static bool Compatible(const Entry& entry, uint64_t txn_id, LockMode mode);

  sim::Simulator* sim_;
  CcScheme scheme_;
  LockStats stats_;
  std::unordered_map<TupleId, Entry> table_;
  std::unordered_map<uint64_t, std::vector<TupleId>> held_;
};

}  // namespace p4db::db

#endif  // P4DB_DB_LOCK_MANAGER_H_
