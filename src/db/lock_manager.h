#ifndef P4DB_DB_LOCK_MANAGER_H_
#define P4DB_DB_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace p4db::db {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Deadlock-prevention flavors of 2PL implemented by the host DBMS
/// (Section 7.1): NO_WAIT aborts on any denied request; WAIT_DIE lets a
/// transaction wait only if it is older than every conflicting transaction,
/// otherwise it aborts ("dies").
enum class CcScheme : uint8_t { kNoWait, kWaitDie };

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t no_wait_aborts = 0;
  uint64_t wait_die_aborts = 0;
  uint64_t upgrades = 0;
};

/// Per-node pessimistic lock table. One instance guards one node's
/// partition; remote transactions reach it after paying network latency.
///
/// Coroutine integration: Acquire returns a future that resolves to
/// kOk (granted) or kAborted (deadlock prevention). A transaction waits on
/// at most one lock at a time (the executor acquires sequentially), so no
/// cancellation path is needed: every enqueued waiter is eventually granted
/// because WAIT_DIE waits-for chains are strictly ordered by timestamp.
class LockManager {
 public:
  /// `metrics` (optional) is the cluster registry; stats are mirrored into
  /// "<prefix>.*" counters there. All node lock managers of one cluster
  /// share a prefix (the registry aggregates their counts); the switch lock
  /// manager gets its own. The local LockStats stays per-instance.
  LockManager(sim::Simulator* sim, CcScheme scheme,
              MetricsRegistry* metrics = nullptr,
              std::string_view prefix = "lock")
      : sim_(sim), scheme_(scheme) {
    if (metrics != nullptr) {
      const std::string p(prefix);
      mirror_.acquisitions = &metrics->counter(p + ".acquisitions");
      mirror_.immediate_grants = &metrics->counter(p + ".immediate_grants");
      mirror_.waits = &metrics->counter(p + ".waits");
      mirror_.no_wait_aborts = &metrics->counter(p + ".no_wait_aborts");
      mirror_.wait_die_aborts = &metrics->counter(p + ".wait_die_aborts");
      mirror_.upgrades = &metrics->counter(p + ".upgrades");
    }
  }

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests a lock for transaction (txn_id, ts). ts is the WAIT_DIE
  /// priority: smaller = older = wins. Re-acquisition by a holder is a
  /// no-op grant; shared->exclusive upgrades are supported and are
  /// evaluated against the other holders only (upgraders go to the front
  /// of the wait queue to stay deadlock-free).
  sim::Future<Status> Acquire(uint64_t txn_id, uint64_t ts, TupleId tuple,
                              LockMode mode);

  /// Releases every lock held by txn_id and hands freed locks to waiters.
  void ReleaseAll(uint64_t txn_id);

  /// Releases one specific lock early (Chiller-style early release of
  /// contended items, Figure 18b). No-op if txn_id does not hold it.
  void ReleaseOne(uint64_t txn_id, TupleId tuple);

  /// Number of locks txn_id currently holds (testing/diagnostics).
  size_t HeldBy(uint64_t txn_id) const;
  bool IsLocked(TupleId tuple) const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats(); }
  CcScheme scheme() const { return scheme_; }

 private:
  struct Holder {
    uint64_t txn_id;
    uint64_t ts;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn_id;
    uint64_t ts;
    LockMode mode;
    bool upgrade;
    sim::Promise<Status> promise;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  /// Grants as many front waiters as compatibility allows (FIFO; stops at
  /// the first incompatible waiter so writers cannot starve).
  void GrantWaiters(TupleId tuple, Entry& entry);
  static bool Compatible(const Entry& entry, uint64_t txn_id, LockMode mode);

  struct Mirror {
    MetricsRegistry::Counter* acquisitions = nullptr;
    MetricsRegistry::Counter* immediate_grants = nullptr;
    MetricsRegistry::Counter* waits = nullptr;
    MetricsRegistry::Counter* no_wait_aborts = nullptr;
    MetricsRegistry::Counter* wait_die_aborts = nullptr;
    MetricsRegistry::Counter* upgrades = nullptr;
  };
  /// Bumps a local stat and its registry mirror together.
  static void Count(uint64_t* local, MetricsRegistry::Counter* mirror) {
    ++*local;
    if (mirror != nullptr) mirror->Increment();
  }

  sim::Simulator* sim_;
  CcScheme scheme_;
  LockStats stats_;
  Mirror mirror_;
  std::unordered_map<TupleId, Entry> table_;
  std::unordered_map<uint64_t, std::vector<TupleId>> held_;
};

}  // namespace p4db::db

#endif  // P4DB_DB_LOCK_MANAGER_H_
