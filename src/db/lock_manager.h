#ifndef P4DB_DB_LOCK_MANAGER_H_
#define P4DB_DB_LOCK_MANAGER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/future.h"
#include "sim/simulator.h"

namespace p4db::db {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Deadlock-prevention flavors of 2PL implemented by the host DBMS
/// (Section 7.1): NO_WAIT aborts on any denied request; WAIT_DIE lets a
/// transaction wait only if it is older than every conflicting transaction,
/// otherwise it aborts ("dies").
enum class CcScheme : uint8_t { kNoWait, kWaitDie };

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t no_wait_aborts = 0;
  uint64_t wait_die_aborts = 0;
  uint64_t upgrades = 0;
};

/// Per-node pessimistic lock table. One instance guards one node's
/// partition; remote transactions reach it after paying network latency.
///
/// Storage is allocation-free in steady state: the lock table is an
/// open-addressed FlatMap keyed by TupleId, and holders / waiters /
/// held-lock lists are index-linked nodes in free-listed pools, so lock
/// churn recycles nodes instead of hitting the allocator. Waiter order
/// (FIFO, with upgraders jumping the queue) is a linked list, exactly the
/// order the old deque enforced.
///
/// Coroutine integration: Acquire returns a future that resolves to
/// kOk (granted) or kAborted (deadlock prevention). A transaction waits on
/// at most one lock at a time (the executor acquires sequentially), so no
/// cancellation path is needed: every enqueued waiter is eventually granted
/// because WAIT_DIE waits-for chains are strictly ordered by timestamp.
class LockManager {
 public:
  /// `metrics` (optional) is the cluster registry; stats are mirrored into
  /// "<prefix>.*" counters there. All node lock managers of one cluster
  /// share a prefix (the registry aggregates their counts); the switch lock
  /// manager gets its own. The local LockStats stays per-instance.
  LockManager(sim::Simulator* sim, CcScheme scheme,
              MetricsRegistry* metrics = nullptr,
              std::string_view prefix = "lock")
      : sim_(sim), scheme_(scheme) {
    if (metrics != nullptr) {
      const std::string p(prefix);
      mirror_.acquisitions = &metrics->counter(p + ".acquisitions");
      mirror_.immediate_grants = &metrics->counter(p + ".immediate_grants");
      mirror_.waits = &metrics->counter(p + ".waits");
      mirror_.no_wait_aborts = &metrics->counter(p + ".no_wait_aborts");
      mirror_.wait_die_aborts = &metrics->counter(p + ".wait_die_aborts");
      mirror_.upgrades = &metrics->counter(p + ".upgrades");
    }
  }

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests a lock for transaction (txn_id, ts). ts is the WAIT_DIE
  /// priority: smaller = older = wins. Re-acquisition by a holder is a
  /// no-op grant; shared->exclusive upgrades are supported and are
  /// evaluated against the other holders only (upgraders go to the front
  /// of the wait queue to stay deadlock-free).
  sim::Future<Status> Acquire(uint64_t txn_id, uint64_t ts, TupleId tuple,
                              LockMode mode);

  /// Releases every lock held by txn_id and hands freed locks to waiters.
  void ReleaseAll(uint64_t txn_id);

  /// Releases one specific lock early (Chiller-style early release of
  /// contended items, Figure 18b). No-op if txn_id does not hold it.
  void ReleaseOne(uint64_t txn_id, TupleId tuple);

  /// Number of locks txn_id currently holds (testing/diagnostics).
  size_t HeldBy(uint64_t txn_id) const;
  bool IsLocked(TupleId tuple) const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats(); }
  CcScheme scheme() const { return scheme_; }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  /// Holder of a granted lock; entries chain through `next` (unordered —
  /// every consumer scans the whole chain).
  struct Holder {
    uint64_t txn_id;
    uint64_t ts;
    LockMode mode;
    uint32_t next;
  };
  /// Queued request; chains head->tail in grant (FIFO) order. Free-listed
  /// through `next`; the promise is cleared on release so the pooled node
  /// holds no shared state between uses.
  struct Waiter {
    uint64_t txn_id = 0;
    uint64_t ts = 0;
    LockMode mode = LockMode::kShared;
    bool upgrade = false;
    uint32_t next = kNil;
    sim::Promise<Status> promise;
  };
  /// Per-transaction held-lock list node, in acquisition order (ReleaseAll
  /// walks it front to back, preserving the old vector's release order).
  struct HeldNode {
    TupleId tuple;
    uint32_t next;
  };

  struct Entry {
    uint32_t holders = kNil;
    uint32_t waiters_head = kNil;
    uint32_t waiters_tail = kNil;
  };
  struct HeldList {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  /// Grants as many front waiters as compatibility allows (FIFO; stops at
  /// the first incompatible waiter so writers cannot starve).
  void GrantWaiters(TupleId tuple, Entry& entry);
  bool Compatible(const Entry& entry, uint64_t txn_id, LockMode mode) const;

  uint32_t AllocHolder();
  void FreeHolder(uint32_t idx);
  uint32_t AllocWaiter();
  void FreeWaiter(uint32_t idx);
  uint32_t AllocHeld();
  void FreeHeld(uint32_t idx);

  void PushHolder(Entry& entry, uint64_t txn_id, uint64_t ts, LockMode mode);
  /// Unlinks txn_id's holder node (if any) from the entry.
  void RemoveHolder(Entry& entry, uint64_t txn_id);
  void HeldAppend(uint64_t txn_id, TupleId tuple);
  /// Releases the lock on `tuple` held by txn_id within `entry`, grants
  /// waiters, and drops the entry when it becomes empty.
  void ReleaseInEntry(uint64_t txn_id, TupleId tuple);

  struct Mirror {
    MetricsRegistry::Counter* acquisitions = nullptr;
    MetricsRegistry::Counter* immediate_grants = nullptr;
    MetricsRegistry::Counter* waits = nullptr;
    MetricsRegistry::Counter* no_wait_aborts = nullptr;
    MetricsRegistry::Counter* wait_die_aborts = nullptr;
    MetricsRegistry::Counter* upgrades = nullptr;
  };
  /// Bumps a local stat and its registry mirror together.
  static void Count(uint64_t* local, MetricsRegistry::Counter* mirror) {
    ++*local;
    if (mirror != nullptr) mirror->Increment();
  }

  sim::Simulator* sim_;
  CcScheme scheme_;
  LockStats stats_;
  Mirror mirror_;

  FlatMap<TupleId, Entry> table_;
  FlatMap<uint64_t, HeldList> held_;
  std::vector<Holder> holder_pool_;
  std::vector<Waiter> waiter_pool_;
  std::vector<HeldNode> held_pool_;
  uint32_t holder_free_ = kNil;
  uint32_t waiter_free_ = kNil;
  uint32_t held_free_ = kNil;
};

}  // namespace p4db::db

#endif  // P4DB_DB_LOCK_MANAGER_H_
