#ifndef P4DB_DB_TXN_H_
#define P4DB_DB_TXN_H_

#include <cstdint>
#include <string>

#include "common/small_vector.h"
#include "common/types.h"

namespace p4db::db {

/// Logical tuple operations, the common IR emitted by the workload
/// generators and consumed by BOTH execution substrates:
///  * the host executor runs them under 2PL on node memory, and
///  * the switch-transaction compiler lowers them to switch Instructions
///    when every touched item is hot (Section 6.1).
/// Keeping one IR guarantees the two paths implement identical semantics,
/// which the equivalence tests exploit.
enum class OpType : uint8_t {
  kGet,            // result = value
  kPut,            // value = operand; result = operand
  kAdd,            // value += operand; result = new value
  kCondAddGeZero,  // add if result stays >= 0; else constraint violation
  kMax,            // value = max(value, operand)
  kSwap,           // value = operand; result = old value
  /// Creates a row and sets one column (host-only; inserts are never hot).
  /// Special dependency semantics: operand_src (if set) offsets the KEY —
  /// e.g. a TPC-C order row keyed by the next-order-id returned from the
  /// switch; operand_src2 (if set) feeds the stored value as usual.
  kInsert,
};

inline bool IsWrite(OpType t) { return t != OpType::kGet; }

/// One logical operation of a transaction.
struct Op {
  OpType type = OpType::kGet;
  TupleId tuple;
  /// Column within the row. Hot offloading is per (tuple, column): the
  /// paper offloads "contended columns of the warehouse and district
  /// tables" (Section 7.5), not whole rows.
  uint16_t column = 0;
  Value64 operand = 0;
  /// If >= 0: effective operand = operand +/- result of ops[operand_src]
  /// (read-dependent write, e.g. SmallBank Amalgamate). A second source is
  /// supported for "sum of two earlier results" patterns.
  int16_t operand_src = -1;
  int16_t operand_src2 = -1;
  bool negate_src = false;
  bool negate_src2 = false;
  /// Host-only result-derived addressing: effective key = tuple.key +
  /// result(operand_src) instead of feeding the operand (TPC-C Delivery /
  /// Order-Status rows addressed by an order id returned from the switch).
  /// Such ops target write-once rows (orders, order lines) and execute
  /// without locks — their single writer is serialized upstream by the
  /// per-district counter. Never compilable to the switch.
  bool key_from_src = false;

  bool has_src() const { return operand_src >= 0; }
  bool has_src2() const { return operand_src2 >= 0; }
};

/// Classification of a transaction w.r.t. the hot-set (Section 3.2).
enum class TxnClass : uint8_t {
  kHot,   // all items hot -> runs entirely on the switch
  kCold,  // no hot items  -> runs entirely on database nodes
  kWarm,  // mixed         -> cold sub-txn + switch sub-txn (Section 6.2)
};

const char* TxnClassName(TxnClass c);

/// A transaction: an ordered list of operations plus bookkeeping used by
/// the benchmark harness.
struct Transaction {
  /// Workload-defined type tag (e.g. SmallBank's Payment) for statistics.
  uint8_t type_tag = 0;
  /// Inline storage covers the common case (YCSB groups of 8, SmallBank's
  /// <= 6 ops); TPC-C's ~50-op transactions spill to the heap.
  SmallVector<Op, 8> ops;

  /// Filled by the engine during classification.
  TxnClass cls = TxnClass::kCold;
  /// True if any op touches a tuple owned by a remote node.
  bool distributed = false;
};

}  // namespace p4db::db

#endif  // P4DB_DB_TXN_H_
