#include "db/txn.h"

namespace p4db::db {

const char* TxnClassName(TxnClass c) {
  switch (c) {
    case TxnClass::kHot:
      return "hot";
    case TxnClass::kCold:
      return "cold";
    case TxnClass::kWarm:
      return "warm";
  }
  return "?";
}

}  // namespace p4db::db
