// Scheduling-core microbenchmark: raw events/sec of the simulator core on
// the event patterns the engine actually generates, measured against an
// in-binary reimplementation of the pre-PR core (std::function payloads in
// one global std::priority_queue), plus a YCSB end-to-end run that reports
// simulated-txns/sec-of-wall through the regular bench harness.
//
// Methodology: every pattern runs kReps times on each core and the best
// rep counts — the cores are deterministic, so the fastest rep is the one
// least disturbed by the host, and best-of-N is robust against noisy
// neighbors on shared machines.
//
// Usage: bench_simcore [--smoke]
//   --smoke: shrunken patterns, one rep, short end-to-end window. Always
//            exits 0 (report-only; CI's Release job runs this).

#include <chrono>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace p4db::bench {
namespace {

// ---------------------------------------------------------------------------
// Legacy reference core: the pre-PR implementation. One global binary heap
// ordered by (time, seq); payloads are std::function (16-byte SBO, so every
// capture beyond two words heap-allocates).
// ---------------------------------------------------------------------------
class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  uint64_t executed_events() const { return executed_; }

  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }
  void ScheduleAt(SimTime time, Callback fn) {
    queue_.push(Ev{time < now_ ? now_ : time, next_seq_++, std::move(fn)});
  }

  void Run() {
    while (!queue_.empty()) {
      // priority_queue::top() is const; the payload is mutable so we can
      // move it out before pop — exactly what the old core did.
      const Ev& top = queue_.top();
      now_ = top.time;
      Callback fn = std::move(top.fn);
      queue_.pop();
      ++executed_;
      fn();
    }
  }

 private:
  struct Ev {
    SimTime time;
    uint64_t seq;
    mutable Callback fn;
    bool operator<(const Ev& other) const {  // max-heap: invert
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Ev> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

// ---------------------------------------------------------------------------
// Core-agnostic scheduling patterns. ResumeAfter uses ScheduleResume when
// the core provides it (the rebuilt core's coroutine fast path) and falls
// back to the Schedule(delay, [h] { h.resume(); }) shape the old core used.
// ---------------------------------------------------------------------------
template <typename S>
auto DoResume(S* sim, SimTime d, std::coroutine_handle<> h, int)
    -> decltype(sim->ScheduleResume(d, h)) {
  sim->ScheduleResume(d, h);
}
template <typename S>
void DoResume(S* sim, SimTime d, std::coroutine_handle<> h, long) {
  sim->Schedule(d, [h] { h.resume(); });
}

template <typename S>
struct ResumeAfter {
  S* sim;
  SimTime delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { DoResume(sim, delay, h, 0); }
  void await_resume() const noexcept {}
};

struct PatternSizes {
  uint64_t storm_hops = 60'000;       // per coroutine, 64 coroutines
  uint64_t fat_total = 4'000'000;     // total callback firings
  uint64_t pop_total = 4'000'000;     // total firings, 100k outstanding
  uint64_t pop_outstanding = 100'000;
  uint64_t ping_awaits = 40'000;      // per coroutine, 128 coroutines
  uint64_t mix_awaits = 30'000;       // per coroutine, 160 coroutines

  static PatternSizes Smoke() {
    PatternSizes s;
    s.storm_hops /= 20;
    s.fat_total /= 20;
    s.pop_total /= 20;
    s.pop_outstanding /= 20;
    s.ping_awaits /= 20;
    s.mix_awaits /= 20;
    return s;
  }
};

// Pattern 1: zero-delay wakeup storm — the promise-resume shape (Future
// fulfillment, Submit, admission retries): 64 coroutines round-robin at one
// timestamp, hopping the clock forward every 1024 wakeups.
template <typename S>
sim::Task ZeroHopper(S& sim, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    co_await ResumeAfter<S>{&sim, (i & 1023) == 1023 ? SimTime{1}
                                                     : SimTime{0}};
  }
}

template <typename S>
uint64_t RunZeroDelayStorm(S& sim, const PatternSizes& sz) {
  std::vector<sim::Task> tasks;
  for (int i = 0; i < 64; ++i) tasks.push_back(ZeroHopper(sim, sz.storm_hops));
  sim.Run();
  return sim.executed_events();
}

// Pattern 2: fat captures — the pipeline's `[this, fl, args...]` shape.
// 40 bytes: past std::function's 16-byte SBO (heap per event on the legacy
// core), inside InlineEvent's inline buffer.
struct FatCtx {
  void* sim;
  uint64_t fired = 0;
  uint64_t total = 0;
};
template <typename S>
struct FatHop {
  FatCtx* ctx;
  uint64_t a, b, c;
  uint32_t lane;
  void operator()() const {
    if (++ctx->fired < ctx->total) {
      static_cast<S*>(ctx->sim)->Schedule((lane % 7) + 1,
                                          FatHop<S>{ctx, a, b, c, lane});
    }
  }
};

template <typename S>
uint64_t RunFatCaptures(S& sim, const PatternSizes& sz) {
  FatCtx ctx{&sim, 0, sz.fat_total};
  for (uint32_t i = 0; i < 64; ++i) {
    sim.Schedule(i % 7, FatHop<S>{&ctx, 1, 2, 3, i});
  }
  sim.Run();
  return sim.executed_events();
}

// Pattern 3: large outstanding population — 100k concurrent timers with
// delays spread over 100us (the scale a full-rack run keeps in flight).
struct PopCtx {
  void* sim;
  uint64_t fired = 0;
  uint64_t total = 0;
  uint64_t rng = 0x12345678;
  SimTime NextDelay() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<SimTime>(rng % 100'000);
  }
};
template <typename S>
struct PopHop {
  PopCtx* ctx;
  void operator()() const {
    if (++ctx->fired < ctx->total) {
      static_cast<S*>(ctx->sim)->Schedule(ctx->NextDelay(), PopHop<S>{ctx});
    }
  }
};

template <typename S>
uint64_t RunBigPopulation(S& sim, const PatternSizes& sz) {
  PopCtx ctx{&sim, 0, sz.pop_total};
  for (uint64_t i = 0; i < sz.pop_outstanding; ++i) {
    sim.Schedule(ctx.NextDelay(), PopHop<S>{&ctx});
  }
  sim.Run();
  return sim.executed_events();
}

// Pattern 4: coroutine delay ping — worker think-time loops (1-5ns delays,
// one dense calendar bucket).
template <typename S>
sim::Task Ping(S& sim, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    co_await ResumeAfter<S>{&sim, static_cast<SimTime>(1 + (i % 5))};
  }
}

template <typename S>
uint64_t RunCoroutinePing(S& sim, const PatternSizes& sz) {
  std::vector<sim::Task> tasks;
  for (int i = 0; i < 128; ++i) tasks.push_back(Ping(sim, sz.ping_awaits));
  sim.Run();
  return sim.executed_events();
}

// Pattern 5: network-like delay mix — send overhead / rx service /
// propagation magnitudes from NetworkConfig, 160 concurrent actors.
template <typename S>
sim::Task Actor(S& sim, uint64_t n, int salt) {
  static constexpr SimTime kDelays[] = {150, 500, 2500, 600, 1, 300};
  for (uint64_t i = 0; i < n; ++i) {
    co_await ResumeAfter<S>{&sim, kDelays[(i + salt) % 6]};
  }
}

template <typename S>
uint64_t RunNetworkMix(S& sim, const PatternSizes& sz) {
  std::vector<sim::Task> tasks;
  for (int i = 0; i < 160; ++i) tasks.push_back(Actor(sim, sz.mix_awaits, i));
  sim.Run();
  return sim.executed_events();
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------
template <typename S>
using PatternFn = uint64_t (*)(S&, const PatternSizes&);

struct Pattern {
  const char* name;
  PatternFn<sim::Simulator> current;
  PatternFn<LegacySimulator> legacy;
};

template <typename S>
double MeasureOnce(PatternFn<S> fn, const PatternSizes& sz) {
  S sim;
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t events = fn(sim, sz);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0 ? static_cast<double>(events) / secs : 0;
}

template <typename S>
double MeasureBest(PatternFn<S> fn, const PatternSizes& sz, int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    best = std::max(best, MeasureOnce(fn, sz));
  }
  return best;
}

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const PatternSizes sizes = smoke ? PatternSizes::Smoke() : PatternSizes();
  const int reps = smoke ? 1 : 3;

  PrintBanner("simcore",
              "Scheduling-core microbenchmark: calendar-queue core vs the "
              "legacy heap core");

  const Pattern patterns[] = {
      {"zero_delay_storm", &RunZeroDelayStorm<sim::Simulator>,
       &RunZeroDelayStorm<LegacySimulator>},
      {"fat_captures", &RunFatCaptures<sim::Simulator>,
       &RunFatCaptures<LegacySimulator>},
      {"big_population", &RunBigPopulation<sim::Simulator>,
       &RunBigPopulation<LegacySimulator>},
      {"coroutine_ping", &RunCoroutinePing<sim::Simulator>,
       &RunCoroutinePing<LegacySimulator>},
      {"network_mix", &RunNetworkMix<sim::Simulator>,
       &RunNetworkMix<LegacySimulator>},
  };

  std::printf("\n%-18s %14s %14s %8s   (best of %d, M events/sec)\n",
              "pattern", "legacy", "current", "speedup", reps);
  double log_sum = 0;
  int count = 0;
  std::string speedup_json = "{\"scenario\": \"simcore_speedups\"";
  for (const Pattern& p : patterns) {
    const double legacy = MeasureBest(p.legacy, sizes, reps);
    const double current = MeasureBest(p.current, sizes, reps);
    const double ratio = legacy > 0 ? current / legacy : 0;
    std::printf("%-18s %13.3fM %13.3fM %7.2fx\n", p.name, legacy / 1e6,
                current / 1e6, ratio);
    if (ratio > 0) {
      log_sum += std::log(ratio);
      ++count;
    }
    char field[96];
    std::snprintf(field, sizeof(field), ", \"%s\": %.3f", p.name, ratio);
    speedup_json += field;
  }
  const double geomean = count > 0 ? std::exp(log_sum / count) : 0;
  std::printf("%-18s %14s %14s %7.2fx  (geometric mean)\n", "overall", "",
              "", geomean);
  // Current-vs-legacy ratios are measured in one process on one host, so
  // the host's absolute speed cancels — the one simcore number a CI gate
  // can compare across machines.
  char field[64];
  std::snprintf(field, sizeof(field), ", \"geomean_speedup\": %.3f}", geomean);
  speedup_json += field;
  AppendRunEntry(speedup_json);

  // End-to-end: YCSB on the paper cluster through the regular harness. The
  // run's harness.events_per_sec / wall clock land in BENCH_simcore.json.
  PrintSectionHeader("YCSB end-to-end (simulated txns per wall second)");
  BenchTime time = BenchTime::FromEnv();
  if (smoke) {
    time.warmup = kMillisecond / 2;
    time.measure = 1 * kMillisecond;
  }
  core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
  wl::YcsbConfig ycfg;
  wl::Ycsb ycsb(ycfg);
  const RunOutput out =
      RunWorkload(cfg, &ycsb, 2000, YcsbHotItems(ycfg, cfg.num_nodes), time);
  std::printf("%-18s %10.0f txn/s sim   %8.3fs wall   %8.3fM events/sec   "
              "%10.0f sim-txns/wall-sec\n",
              "ycsb_paper8", out.throughput, out.wall_seconds,
              out.events_per_sec / 1e6,
              out.wall_seconds > 0
                  ? static_cast<double>(out.metrics.committed) /
                        out.wall_seconds
                  : 0);
  return 0;
}

}  // namespace p4db::bench

int main(int argc, char** argv) { return p4db::bench::Main(argc, argv); }
