// Figure 1 (teaser): P4DB vs No-Switch on SmallBank and TPC-C at high
// contention — the headline speedups of the paper's introduction.

#include "bench_common.h"

namespace p4db::bench {
namespace {

double RunSmallBank(core::EngineMode mode, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::SmallBankConfig wcfg;
  wcfg.hot_accounts_per_node = 5;
  wl::SmallBank workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     SmallBankHotItems(wcfg, cfg.num_nodes), time)
      .throughput;
}

double RunTpcc(core::EngineMode mode, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::TpccConfig wcfg;
  wcfg.num_warehouses = 8;
  wl::Tpcc workload(wcfg);
  return RunWorkload(cfg, &workload, 20000, kTpccHotItemBudget, time)
      .throughput;
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 1", "teaser: OLTP processing with and without P4DB");
  std::printf("%-10s %16s %14s %10s\n", "workload", "No-Switch(tx/s)",
              "P4DB(tx/s)", "speedup");
  const double sb_base = RunSmallBank(EngineMode::kNoSwitch, time);
  const double sb_p4 = RunSmallBank(EngineMode::kP4db, time);
  std::printf("%-10s %16.0f %14.0f %9.2fx\n", "SmallBank", sb_base, sb_p4,
              Speedup(sb_p4, sb_base));
  const double tp_base = RunTpcc(EngineMode::kNoSwitch, time);
  const double tp_p4 = RunTpcc(EngineMode::kP4db, time);
  std::printf("%-10s %16.0f %14.0f %9.2fx\n", "TPC-C", tp_base, tp_p4,
              Speedup(tp_p4, tp_base));
  return 0;
}
