// Figure 14 (speedups) + Figure 21 (raw throughput): TPC-C
// (NewOrder + Payment mix, warm transactions).
// Upper row: varying contention via warehouses (8 / 16 / 32) and workers.
// Lower row: varying remote probability (distributed transactions).

#include "bench_common.h"

namespace p4db::bench {
namespace {

RunOutput Run(core::EngineMode mode, uint32_t warehouses, uint16_t workers,
              double remote, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  cfg.workers_per_node = workers;
  wl::TpccConfig wcfg;
  wcfg.num_warehouses = warehouses;
  wcfg.remote_fraction = remote;
  wl::Tpcc workload(wcfg);
  return RunWorkload(cfg, &workload, 20000, kTpccHotItemBudget, time);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 14 + Figure 21",
              "TPC-C speedup over No-Switch and raw throughput (warm txns)");

  for (uint32_t wh : {8u, 16u, 32u}) {
    PrintSectionHeader(std::to_string(wh) +
                       " warehouses: varying workers, 20% remote");
    std::printf("%8s %14s %14s %10s %12s\n", "workers", "NoSwitch(tx/s)",
                "P4DB(tx/s)", "speedup", "warm-share");
    for (uint16_t workers : {8, 12, 16, 20}) {
      const RunOutput base =
          Run(EngineMode::kNoSwitch, wh, workers, 0.2, time);
      const RunOutput p4 = Run(EngineMode::kP4db, wh, workers, 0.2, time);
      const double warm_share =
          p4.metrics.committed == 0
              ? 0
              : 100.0 * p4.metrics.committed_by_class[2] /
                    p4.metrics.committed;
      std::printf("%8u %14.0f %14.0f %9.2fx %11.1f%%\n", workers,
                  base.throughput, p4.throughput,
                  Speedup(p4.throughput, base.throughput), warm_share);
    }
  }

  for (uint32_t wh : {8u, 16u, 32u}) {
    PrintSectionHeader(std::to_string(wh) +
                       " warehouses: varying remote fraction, 20 workers");
    std::printf("%8s %14s %14s %10s\n", "remote%", "NoSwitch(tx/s)",
                "P4DB(tx/s)", "speedup");
    for (double remote : {0.0, 0.1, 0.2, 0.5, 0.8}) {
      const RunOutput base = Run(EngineMode::kNoSwitch, wh, 20, remote, time);
      const RunOutput p4 = Run(EngineMode::kP4db, wh, 20, remote, time);
      std::printf("%7.0f%% %14.0f %14.0f %9.2fx\n", remote * 100,
                  base.throughput, p4.throughput,
                  Speedup(p4.throughput, base.throughput));
    }
  }
  return 0;
}
