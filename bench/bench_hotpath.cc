// Transaction hot-path benchmark: wall-clock txns/sec and heap
// allocations per committed transaction, on the single-node (allocation
// discipline) and 8-node figure-11 (end-to-end speed) configurations.
//
// Unlike the figure benches this one measures the HARNESS, not the
// simulated system: simulated throughput is deterministic and identical
// across harness changes, so the interesting outputs are
// wall_txns_per_sec (committed transactions per host second) and
// allocs_per_txn (global operator-new calls inside the measured window per
// committed transaction). Both land in BENCH_hotpath.json for the CI
// perf gate.

#include <cinttypes>
#include <cstdlib>
#include <chrono>
#include <cstdio>
#include <string>

#include "../tests/alloc_counter.h"
#include "bench_common.h"

namespace p4db::bench {
namespace {

struct HotpathRun {
  core::Metrics metrics;
  double wall_seconds = 0;
  double wall_txns_per_sec = 0;  // committed / host wall seconds
  uint64_t window_allocs = 0;    // operator-new calls in measured window
  uint64_t window_frees = 0;
  double allocs_per_txn = 0;
};

/// Steady-state preparation for the strict zero-allocation scenarios: every
/// row of a bounded working set is materialized up front (GetOrCreate in
/// the measured window then only looks up) and the growable bookkeeping —
/// WAL record index + payload arena, the OCC version table — is pre-sized
/// past the run's high-water mark. 0 = skip (unbounded workloads such as
/// the figure-11 cluster keep their lazily-materialized 10^9-key table).
struct SteadyStatePrep {
  uint64_t materialize_keys = 0;
  size_t wal_records_per_node = 0;
  size_t wal_payload_bytes_per_node = 0;
};

void Prepare(core::Engine& engine, const SteadyStatePrep& prep) {
  if (prep.materialize_keys == 0) return;
  db::Catalog& catalog = engine.catalog();
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    db::Table& table = catalog.table(t);
    for (uint64_t k = 0; k < prep.materialize_keys; ++k) {
      table.GetOrCreate(static_cast<Key>(k));
    }
  }
  engine.ReserveSteadyState(prep.materialize_keys, prep.wal_records_per_node,
                            prep.wal_payload_bytes_per_node);
}

/// Like RunWorkload, but brackets the measured window with allocation
/// snapshots. Both snapshot events are scheduled before Run, so at their
/// timestamps they hold the smallest sequence numbers and fire before any
/// same-instant transaction work: `begin` just after the warmup boundary
/// (Run's own metrics/registry reset allocates and must stay outside the
/// window), `end` exactly at the horizon before teardown.
HotpathRun RunHotpath(const core::SystemConfig& config, wl::Workload* workload,
                      size_t sample_size, size_t max_hot_items,
                      const BenchTime& time,
                      const SteadyStatePrep& prep = {},
                      bool trace_full = false) {
  core::Engine engine(config);
  engine.SetWorkload(workload);
  engine.Offload(sample_size, max_hot_items);
  Prepare(engine, prep);
  // Full-run tracing: the ring is the one allocation, made here, before the
  // measured window. Recording itself must stay allocation-free.
  if (trace_full) engine.EnableFullTrace();

  // P4DB_TRAP_ALLOCS=1 turns the first in-window allocation into a trap so
  // a debugger shows the offending stack (strict scenarios only).
  // ScheduleGlobalAt dispatches to both runtimes; in sharded mode the
  // snapshots run as quiescent coordinator globals, so they observe every
  // shard's allocations at a consistent instant.
  const bool trap =
      prep.materialize_keys != 0 && std::getenv("P4DB_TRAP_ALLOCS") != nullptr;
  testing::AllocSnapshot begin, end;
  engine.ScheduleGlobalAt(time.warmup + 1, [&begin, trap] {
    begin = testing::CaptureAllocs();
    if (trap) testing::SetAllocTrap(true);
  });
  engine.ScheduleGlobalAt(time.warmup + time.measure, [&end] {
    testing::SetAllocTrap(false);
    end = testing::CaptureAllocs();
  });

  HotpathRun out;
  const auto wall_start = std::chrono::steady_clock::now();
  out.metrics = engine.Run(time.warmup, time.measure);
  const auto wall_end = std::chrono::steady_clock::now();
  out.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  out.wall_txns_per_sec =
      out.wall_seconds > 0
          ? static_cast<double>(out.metrics.committed) / out.wall_seconds
          : 0;
  out.window_allocs = end.allocs - begin.allocs;
  out.window_frees = end.frees - begin.frees;
  out.allocs_per_txn =
      out.metrics.committed > 0
          ? static_cast<double>(out.window_allocs) /
                static_cast<double>(out.metrics.committed)
          : 0;
  return out;
}

void Record(const char* scenario, const core::SystemConfig& config,
            const wl::Workload& workload, const HotpathRun& run) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"scenario\": \"%s\", \"mode\": \"%s\", \"cc\": \"%s\", "
      "\"workload\": \"%s\", \"nodes\": %u, \"committed\": %" PRIu64
      ", \"wall_seconds\": %.6f, \"wall_txns_per_sec\": %.0f, "
      "\"window_allocs\": %" PRIu64 ", \"window_frees\": %" PRIu64
      ", \"allocs_per_txn\": %.3f}",
      scenario, core::EngineModeName(config.mode),
      core::CcProtocolName(config.cc_protocol), workload.name().c_str(),
      config.num_nodes, run.metrics.committed, run.wall_seconds,
      run.wall_txns_per_sec, run.window_allocs, run.window_frees,
      run.allocs_per_txn);
  AppendRunEntry(buf);
  std::printf("%-24s %-9s %-4s %-10s %10" PRIu64 " %12.0f %12" PRIu64
              " %10.3f\n",
              scenario, core::EngineModeName(config.mode),
              core::CcProtocolName(config.cc_protocol),
              workload.name().c_str(), run.metrics.committed,
              run.wall_txns_per_sec, run.window_allocs, run.allocs_per_txn);
}

core::SystemConfig SingleNode(core::CcProtocol cc) {
  core::SystemConfig cfg;
  cfg.mode = core::EngineMode::kNoSwitch;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 20;
  cfg.cc_protocol = cc;
  cfg.seed = 42;
  return cfg;
}

void RunAll(const BenchTime& time) {
  std::printf("%-24s %-9s %-4s %-10s %10s %12s %12s %10s\n", "scenario",
              "mode", "cc", "workload", "committed", "wall-txn/s", "allocs",
              "allocs/txn");

  // Allocation discipline: single-node, everything host-local, bounded
  // working set materialized up front. Steady state must then be EXACTLY
  // zero heap allocations per committed transaction — any regression here
  // is a new per-txn allocation on the hot path.
  SteadyStatePrep prep;
  prep.materialize_keys = 100000;
  prep.wal_records_per_node = 1 << 18;
  prep.wal_payload_bytes_per_node = 16 << 20;
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    wcfg.table_size = prep.materialize_keys;
    const core::SystemConfig cfg = SingleNode(core::CcProtocol::k2pl);
    wl::Ycsb workload(wcfg);
    Record("alloc_ycsb_2pl_1node", cfg, workload,
           RunHotpath(cfg, &workload, 20000, YcsbHotItems(wcfg, 1), time,
                      prep));
  }
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    wcfg.table_size = prep.materialize_keys;
    const core::SystemConfig cfg = SingleNode(core::CcProtocol::kOcc);
    wl::Ycsb workload(wcfg);
    Record("alloc_ycsb_occ_1node", cfg, workload,
           RunHotpath(cfg, &workload, 20000, YcsbHotItems(wcfg, 1), time,
                      prep));
  }
  {
    wl::SmallBankConfig wcfg;
    wcfg.num_accounts = prep.materialize_keys;
    const core::SystemConfig cfg = SingleNode(core::CcProtocol::k2pl);
    wl::SmallBank workload(wcfg);
    Record("alloc_smallbank_2pl_1node", cfg, workload,
           RunHotpath(cfg, &workload, 20000, SmallBankHotItems(wcfg, 1),
                      time, prep));
  }

  // End-to-end speed: the figure-11 cluster (8 nodes, 20 workers/node,
  // YCSB-A, 20% distributed) under P4DB and No-Switch, plus SmallBank.
  HotpathRun fig11_p4db;
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    const core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
    wl::Ycsb workload(wcfg);
    fig11_p4db = RunHotpath(cfg, &workload, 20000,
                            YcsbHotItems(wcfg, cfg.num_nodes), time);
    Record("fig11_ycsb_p4db_8node", cfg, workload, fig11_p4db);
  }
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    const core::SystemConfig cfg = PaperCluster(core::EngineMode::kNoSwitch);
    wl::Ycsb workload(wcfg);
    Record("fig11_ycsb_noswitch_8node", cfg, workload,
           RunHotpath(cfg, &workload, 20000,
                      YcsbHotItems(wcfg, cfg.num_nodes), time));
  }
  {
    wl::SmallBankConfig wcfg;
    const core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
    wl::SmallBank workload(wcfg);
    Record("smallbank_p4db_8node", cfg, workload,
           RunHotpath(cfg, &workload, 20000,
                      SmallBankHotItems(wcfg, cfg.num_nodes), time));
  }

  // Tracing overhead: the figure-11 P4DB run again with a full-run tracer
  // armed. Tracing is passive, so the simulated results must be identical
  // to the untraced run; the wall-clock ratio is the recording cost, gated
  // in CI at <10%.
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    const core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
    wl::Ycsb workload(wcfg);
    const HotpathRun traced =
        RunHotpath(cfg, &workload, 20000, YcsbHotItems(wcfg, cfg.num_nodes),
                   time, {}, /*trace_full=*/true);
    Record("fig11_ycsb_p4db_traced", cfg, workload, traced);
    if (traced.metrics.committed != fig11_p4db.metrics.committed) {
      std::printf("WARNING: traced committed %" PRIu64
                  " != untraced %" PRIu64 " — tracing is not passive!\n",
                  traced.metrics.committed, fig11_p4db.metrics.committed);
    }
    const double overhead_ratio =
        traced.wall_txns_per_sec > 0
            ? fig11_p4db.wall_txns_per_sec / traced.wall_txns_per_sec
            : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"scenario\": \"tracing_overhead\", "
                  "\"overhead_ratio\": %.4f, \"untraced_committed\": %" PRIu64
                  ", \"traced_committed\": %" PRIu64 "}",
                  overhead_ratio, fig11_p4db.metrics.committed,
                  traced.metrics.committed);
    AppendRunEntry(buf);
    std::printf("%-24s tracing on/off wall ratio %.3fx (committed %s)\n",
                "tracing_overhead", overhead_ratio,
                traced.metrics.committed == fig11_p4db.metrics.committed
                    ? "identical"
                    : "DIFFER");
  }

  // INT overhead: the figure-11 P4DB run again with postcard telemetry
  // armed. Stamping and folding are passive — the simulated event schedule
  // (and so the commit count) must be identical to the INT-off run; the
  // wall-clock ratio is the pure recording cost, gated in CI like tracing.
  {
    wl::YcsbConfig wcfg;
    wcfg.variant = 'A';
    core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
    cfg.int_telemetry.enabled = true;
    wl::Ycsb workload(wcfg);
    const HotpathRun armed = RunHotpath(
        cfg, &workload, 20000, YcsbHotItems(wcfg, cfg.num_nodes), time);
    Record("fig11_ycsb_p4db_int", cfg, workload, armed);
    if (armed.metrics.committed != fig11_p4db.metrics.committed) {
      std::printf("WARNING: INT committed %" PRIu64 " != plain %" PRIu64
                  " — postcard stamping is not passive!\n",
                  armed.metrics.committed, fig11_p4db.metrics.committed);
    }
    const double overhead_ratio =
        armed.wall_txns_per_sec > 0
            ? fig11_p4db.wall_txns_per_sec / armed.wall_txns_per_sec
            : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"scenario\": \"int_overhead\", "
                  "\"overhead_ratio\": %.4f, \"plain_committed\": %" PRIu64
                  ", \"int_committed\": %" PRIu64 "}",
                  overhead_ratio, fig11_p4db.metrics.committed,
                  armed.metrics.committed);
    AppendRunEntry(buf);
    std::printf("%-24s INT on/off wall ratio %.3fx (committed %s)\n",
                "int_overhead", overhead_ratio,
                armed.metrics.committed == fig11_p4db.metrics.committed
                    ? "identical"
                    : "DIFFER");
  }

  // Parallel scaling: the figure-11 YCSB cluster on the sharded runtime at
  // 1, 2, 4 and 8 worker threads. Two outputs with very different gating:
  // wall_txns_per_sec is machine-dependent (a 1-core CI runner shows no
  // speedup; an 8-core box should approach linear) and is only reported,
  // while parallel_committed_parity is machine-INDEPENDENT — every thread
  // count must commit exactly what threads=1 commits, because event
  // delivery order is a function of the seed, never of thread scheduling.
  {
    const int kThreadCounts[] = {1, 2, 4, 8};
    uint64_t committed_t1 = 0;
    double wall_t1 = 0;
    double wall_t8 = 0;
    bool parity = true;
    for (const int threads : kThreadCounts) {
      wl::YcsbConfig wcfg;
      wcfg.variant = 'A';
      core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
      cfg.threads = threads;
      wl::Ycsb workload(wcfg);
      const HotpathRun run = RunHotpath(
          cfg, &workload, 20000, YcsbHotItems(wcfg, cfg.num_nodes), time);
      if (threads == 1) {
        committed_t1 = run.metrics.committed;
        wall_t1 = run.wall_txns_per_sec;
      }
      if (threads == 8) wall_t8 = run.wall_txns_per_sec;
      const bool same = run.metrics.committed == committed_t1;
      parity = parity && same;
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "{\"scenario\": \"scaling_ycsb_p4db_t%d\", \"mode\": \"%s\", "
          "\"cc\": \"%s\", \"workload\": \"%s\", \"nodes\": %u, "
          "\"threads\": %d, \"committed\": %" PRIu64
          ", \"wall_seconds\": %.6f, \"wall_txns_per_sec\": %.0f, "
          "\"parallel_committed_parity\": %s}",
          threads, core::EngineModeName(cfg.mode),
          core::CcProtocolName(cfg.cc_protocol), workload.name().c_str(),
          cfg.num_nodes, threads, run.metrics.committed, run.wall_seconds,
          run.wall_txns_per_sec, same ? "true" : "false");
      AppendRunEntry(buf);
      std::printf("scaling_ycsb_p4db_t%-5d P4DB      2PL  YCSB-A     "
                  "%10" PRIu64 " %12.0f   parity=%s\n",
                  threads, run.metrics.committed, run.wall_txns_per_sec,
                  same ? "yes" : "NO");
    }
    const double speedup_t8 = wall_t1 > 0 ? wall_t8 / wall_t1 : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"scenario\": \"scaling_summary\", "
                  "\"parallel_committed_parity\": %s, "
                  "\"committed_t1\": %" PRIu64 ", \"speedup_t8\": %.3f}",
                  parity ? "true" : "false", committed_t1, speedup_t8);
    AppendRunEntry(buf);
    std::printf("%-24s threads=8 vs threads=1 wall speedup %.2fx "
                "(committed %s across thread counts)\n",
                "scaling_summary", speedup_t8,
                parity ? "identical" : "DIFFER");
  }
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("hotpath",
              "transaction hot path: wall-clock txns/sec + allocations/txn");
  RunAll(time);
  return 0;
}
