// Figure 17: graceful degradation when the hot-set outgrows the switch
// capacity (YCSB-A). Four switch capacities arise from four tuple widths
// (8..64B); when the hot set exceeds capacity, overflow items stay on the
// nodes and throughput degrades toward the No-Switch level instead of
// falling off a cliff. (Log-scale x in the paper.)

#include "bench_common.h"

namespace p4db::bench {
namespace {

double Run(core::EngineMode mode, uint32_t tuple_bytes,
           uint32_t hot_keys_per_node, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  // Scaled-down switch so capacity crossover points are reachable with
  // short simulations: 2.5K..20K rows instead of 81K..650K. Ratios match
  // the paper's four tuple-width configurations.
  cfg.pipeline.sram_bytes_per_stage = 8 * 1024;
  cfg.pipeline.tuple_bytes = tuple_bytes;
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.hot_keys_per_node = hot_keys_per_node;
  wl::Ycsb workload(wcfg);
  const RunOutput r = RunWorkload(cfg, &workload, 50000,
                                  YcsbHotItems(wcfg, cfg.num_nodes), time);
  return r.throughput;
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 17",
              "growing hot-set vs switch capacity (YCSB-A, log-scale x)");

  const uint32_t widths[] = {8, 16, 32, 64};
  std::printf("capacities (rows): ");
  for (uint32_t w : widths) {
    p4db::core::SystemConfig cfg = PaperCluster(EngineMode::kP4db);
    cfg.pipeline.sram_bytes_per_stage = 8 * 1024;
    cfg.pipeline.tuple_bytes = w;
    std::printf("%uB->%llu  ", w,
                static_cast<unsigned long long>(cfg.pipeline.CapacityRows()));
  }
  std::printf("\n\n%10s", "hotset");
  for (uint32_t w : widths) std::printf(" %11uB", w);
  std::printf(" %12s\n", "NoSwitch");

  for (uint32_t hot_per_node : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    std::printf("%10u", hot_per_node * 8);
    for (uint32_t w : widths) {
      std::printf(" %12.0f",
                  Run(EngineMode::kP4db, w, hot_per_node, time));
    }
    std::printf(" %12.0f\n",
                Run(EngineMode::kNoSwitch, 8, hot_per_node, time));
  }
  return 0;
}
