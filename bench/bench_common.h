#ifndef P4DB_BENCH_BENCH_COMMON_H_
#define P4DB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace p4db::bench {

/// Wall-clock budget knobs shared by all figure benches. The defaults give
/// stable numbers; `P4DB_BENCH_QUICK=1` in the environment shrinks the
/// simulated horizon ~4x for smoke runs.
struct BenchTime {
  SimTime warmup = 2 * kMillisecond;
  SimTime measure = 10 * kMillisecond;

  static BenchTime FromEnv();
};

/// Everything one simulated run produces.
struct RunOutput {
  core::Metrics metrics;
  sw::PipelineStats pipeline;
  core::OffloadReport offload;
  double throughput = 0;      // committed txn/s (simulated time)
  double wall_seconds = 0;    // host wall-clock spent inside Engine::Run
  uint64_t sim_events = 0;    // simulator events executed by the run
  double events_per_sec = 0;  // sim_events / wall_seconds (harness speed)
  std::string metrics_json;   // engine MetricsRegistry dump for this run
  std::string time_series_json;  // Sampler::ToJson for this run
  std::string critical_path_json;  // Engine::CriticalPathJson (INT runs only)
};

/// Virtual-time sampling window used by every RunWorkload: committed /
/// aborted / switch-txn rates and windowed p99 latency per tick, embedded as
/// "time_series" in each BENCH_<name>.json run entry.
constexpr SimTime kSamplerTick = 100 * kMicrosecond;

/// Parses harness-wide flags out of argv (--trace=PATH, --threads=N,
/// --open-loop[=TXN_PER_S], --offered-load=TXN_PER_S, --batch=N, --int,
/// --int-wire-cost). Benches call this first in main; unrecognized
/// arguments are ignored.
void ParseBenchArgs(int argc, char** argv);

/// Path from --trace=PATH, empty when tracing was not requested. The first
/// kP4db RunWorkload of the process captures a full trace and writes the
/// Chrome trace_event file there (open in Perfetto / chrome://tracing).
const std::string& TracePath();

/// Worker-thread count from --threads=N (0 = legacy single-thread runtime).
/// RunWorkload applies it to every run the parallel sharded runtime
/// supports (2PL, P4DB / No-Switch, thread-safe workload generation) and
/// silently keeps the rest on the legacy runtime, so `--threads=4` is safe
/// on any figure bench.
int BenchThreads();

/// Cluster-wide offered load in txn/s from --open-loop / --offered-load
/// (0 = closed loop). RunWorkload switches every run to the open-loop
/// arrival engine at this rate when set.
double BenchOfferedLoad();

/// Egress batch size from --batch=N (1 = batching off). RunWorkload applies
/// it to every run the batcher supports (P4DB mode, 2PL, single switch) and
/// silently keeps the rest unbatched, so `--batch=8` is safe on any bench.
uint32_t BenchBatchSize();

/// INT telemetry from --int (postcard mode, zero modeled wire cost) and
/// --int-wire-cost (implies --int; telemetry bytes charged to every
/// request, recirculation and reply). RunWorkload arms INT on the runs that
/// support it (P4DB mode, 2PL) and each armed run's BENCH entry gains a
/// "critical_path" section.
bool BenchIntEnabled();
bool BenchIntWireCost();

/// Builds an Engine for `config`, offloads `max_hot_items` detected from
/// `sample_size` sampled transactions, runs the closed loop, and collects
/// results. The workload object must outlive the call.
RunOutput RunWorkload(const core::SystemConfig& config, wl::Workload* workload,
                      size_t sample_size, size_t max_hot_items,
                      const BenchTime& time);

/// Baseline cluster configuration used by all figure benches: the paper's
/// 8-node rack (Section 7.1).
core::SystemConfig PaperCluster(core::EngineMode mode);

/// Hot-item budgets for the standard workload setups.
size_t YcsbHotItems(const wl::YcsbConfig& cfg, uint16_t num_nodes);
size_t SmallBankHotItems(const wl::SmallBankConfig& cfg, uint16_t num_nodes);
constexpr size_t kTpccHotItemBudget = 2000;

/// Formatting helpers: all figure benches print aligned rows so the bench
/// output is diffable run-to-run.
///
/// PrintBanner also names the benchmark for machine-readable output: every
/// subsequent RunWorkload appends its MetricsRegistry dump to an in-memory
/// list that is written to BENCH_<name>.json when the process exits.
void PrintBanner(const char* figure, const char* description);
void PrintSectionHeader(const std::string& text);

/// Appends one raw JSON object to the BENCH_<name>.json runs list — the
/// escape hatch for benches whose unit of output is not a RunWorkload
/// (e.g. bench_failover's per-bucket throughput timeline).
void AppendRunEntry(const std::string& json_entry);

inline double Speedup(double a, double b) { return b == 0 ? 0 : a / b; }

}  // namespace p4db::bench

#endif  // P4DB_BENCH_BENCH_COMMON_H_
