// Figure 18a: latency break-down for committed TPC-C transactions (8
// warehouses, 20 workers/node). P4DB cuts the lock-acquisition share (hot
// columns are lock-free on the switch) and the remote-access share (hot
// items cost half a round trip).

#include "bench_common.h"

namespace p4db::bench {
namespace {

void Row(core::EngineMode mode, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::TpccConfig wcfg;
  wcfg.num_warehouses = 8;
  wl::Tpcc workload(wcfg);
  const RunOutput r = RunWorkload(cfg, &workload, 20000, kTpccHotItemBudget,
                                  time);
  const double n = static_cast<double>(r.metrics.committed);
  const auto& b = r.metrics.breakdown;
  const auto us = [n](int64_t v) { return n == 0 ? 0.0 : v / n / 1e3; };
  std::printf("%-10s %11.1f %11.1f %11.1f %11.1f %11.1f %11.1f %11.1f %9.1f "
              "%9.1f\n",
              core::EngineModeName(mode), us(b.lock_wait),
              us(b.remote_access), us(b.switch_access), us(b.local_work),
              us(b.commit), us(b.backoff),
              r.metrics.latency_all.Mean() / 1e3,
              static_cast<double>(r.metrics.latency_all.P50()) / 1e3,
              static_cast<double>(r.metrics.latency_all.P99()) / 1e3);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 18a",
              "TPC-C latency break-down per committed txn (us)");
  std::printf("%-10s %11s %11s %11s %11s %11s %11s %11s %9s %9s\n", "engine",
              "lock-acq", "remote", "switch", "local", "commit",
              "abort+back", "total-lat", "p50", "p99");
  Row(p4db::core::EngineMode::kNoSwitch, time);
  Row(p4db::core::EngineMode::kP4db, time);
  return 0;
}
