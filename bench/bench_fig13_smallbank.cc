// Figure 13 (speedups) + Figure 20 (raw throughput): SmallBank.
// Upper row: varying contention via hot-set size (5 / 10 / 15 hot accounts
// per node) and worker threads. Lower row: varying distributed fraction.

#include "bench_common.h"

namespace p4db::bench {
namespace {

RunOutput Run(core::EngineMode mode, uint32_t hot_accounts, uint16_t workers,
              double distributed, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  cfg.workers_per_node = workers;
  wl::SmallBankConfig wcfg;
  wcfg.hot_accounts_per_node = hot_accounts;
  wcfg.distributed_fraction = distributed;
  wl::SmallBank workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     SmallBankHotItems(wcfg, cfg.num_nodes), time);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 13 + Figure 20",
              "SmallBank speedup over No-Switch and raw throughput");

  for (uint32_t hot : {5u, 10u, 15u}) {
    PrintSectionHeader("hot-set " + std::to_string(hot) +
                       " accounts/node: varying workers, 20% distributed");
    std::printf("%8s %14s %14s %10s\n", "workers", "NoSwitch(tx/s)",
                "P4DB(tx/s)", "speedup");
    for (uint16_t workers : {8, 12, 16, 20}) {
      const RunOutput base =
          Run(EngineMode::kNoSwitch, hot, workers, 0.2, time);
      const RunOutput p4 = Run(EngineMode::kP4db, hot, workers, 0.2, time);
      std::printf("%8u %14.0f %14.0f %9.2fx\n", workers, base.throughput,
                  p4.throughput, Speedup(p4.throughput, base.throughput));
    }
  }

  for (uint32_t hot : {5u, 10u, 15u}) {
    PrintSectionHeader("hot-set " + std::to_string(hot) +
                       " accounts/node: varying distributed, 20 workers");
    std::printf("%8s %14s %14s %10s\n", "dist%", "NoSwitch(tx/s)",
                "P4DB(tx/s)", "speedup");
    for (double dist : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      const RunOutput base = Run(EngineMode::kNoSwitch, hot, 20, dist, time);
      const RunOutput p4 = Run(EngineMode::kP4db, hot, 20, dist, time);
      std::printf("%7.0f%% %14.0f %14.0f %9.2fx\n", dist * 100,
                  base.throughput, p4.throughput,
                  Speedup(p4.throughput, base.throughput));
    }
  }
  return 0;
}
