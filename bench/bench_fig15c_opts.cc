// Figure 15c: ablation of the multi-pass optimizations (Section 5.3), on
// the hot (switch-only) transactions of YCSB-A. Baseline "Unoptimized" uses
// a random data layout (program-order instructions) with neither the fast
// recirculation port nor fine-grained locks; optimizations are then enabled
// one at a time, ending with the optimal declustered layout.

#include "bench_common.h"

namespace p4db::bench {
namespace {

struct Config {
  const char* name;
  bool fast_recirc;
  bool fine_grained;
  bool optimal_layout;
};

RunOutput Run(const Config& c, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
  cfg.pipeline.fast_recirc_enabled = c.fast_recirc;
  cfg.pipeline.fine_grained_locks = c.fine_grained;
  cfg.optimal_layout = c.optimal_layout;
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.hot_txn_fraction = 1.0;  // switch-only transactions
  wl::Ycsb workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     YcsbHotItems(wcfg, cfg.num_nodes), time);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 15c",
              "multi-pass optimization ablation (YCSB-A hot txns only)");
  const Config configs[] = {
      {"Unoptimized", false, false, false},
      {"+Fast-Recirculate", true, false, false},
      {"+Fine-grained locks", true, true, false},
      {"+Optimal data layout", true, true, true},
  };
  std::printf("%-22s %14s %10s %12s %12s %14s\n", "config", "tput(tx/s)",
              "speedup", "multi-pass%", "avg-passes", "blocked-recirc");
  double base = 0;
  for (const Config& c : configs) {
    const RunOutput r = Run(c, time);
    if (base == 0) base = r.throughput;
    const auto& p = r.pipeline;
    const double multi_share =
        p.txns_completed == 0
            ? 0
            : 100.0 * p.multi_pass_txns / p.txns_completed;
    const double avg_passes =
        p.txns_completed == 0
            ? 0
            : static_cast<double>(p.total_passes) / p.txns_completed;
    std::printf("%-22s %14.0f %9.2fx %11.1f%% %12.2f %14llu\n", c.name,
                r.throughput, Speedup(r.throughput, base), multi_share,
                avg_passes,
                static_cast<unsigned long long>(p.lock_blocked_recircs));
  }
  return 0;
}
