#include "bench_common.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/json_util.h"

namespace p4db::bench {

namespace {

// Machine-readable output: PrintBanner names the benchmark, every
// RunWorkload appends one entry, and an atexit hook flushes the collected
// runs to BENCH_<name>.json next to the binary's working directory.
std::string g_bench_name;                // sanitized, e.g. "fig11_ycsb"
std::vector<std::string> g_run_entries;  // one JSON object per run

std::string SanitizeBenchName(const char* figure) {
  std::string out;
  bool last_was_sep = true;  // swallow leading separators
  for (const char* p = figure; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
      last_was_sep = false;
    } else if (!last_was_sep) {
      out.push_back('_');
      last_was_sep = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? std::string("bench") : out;
}

// --trace=PATH state: the first kP4db run of the process records a full
// trace and exports it there.
std::string g_trace_path;
bool g_trace_consumed = false;

void FlushBenchJson() {
  if (g_bench_name.empty()) return;
  const std::string path = "BENCH_" + g_bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\": \"%s\", \"runs\": [",
               JsonEscape(g_bench_name).c_str());
  for (size_t i = 0; i < g_run_entries.size(); ++i) {
    std::fprintf(f, "%s\n  %s", i == 0 ? "" : ",", g_run_entries[i].c_str());
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

void RecordRun(const core::SystemConfig& config, const wl::Workload& workload,
               const RunOutput& out) {
  std::string entry = "{";
  entry += "\"mode\": \"";
  entry += JsonEscape(core::EngineModeName(config.mode));
  entry += "\", \"cc\": \"";
  entry += JsonEscape(core::CcProtocolName(config.cc_protocol));
  entry += "\", \"workload\": \"";
  entry += JsonEscape(workload.name());
  entry += "\", \"throughput\": ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", out.throughput);
  entry += buf;
  entry += ", \"committed\": ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(out.metrics.committed));
  entry += buf;
  entry += ", \"abort_rate\": ";
  std::snprintf(buf, sizeof(buf), "%.4f", out.metrics.AbortRate());
  entry += buf;
  entry += ", \"wall_seconds\": ";
  std::snprintf(buf, sizeof(buf), "%.6f", out.wall_seconds);
  entry += buf;
  entry += ", \"events_per_sec\": ";
  std::snprintf(buf, sizeof(buf), "%.0f", out.events_per_sec);
  entry += buf;
  entry += ", \"registry\": ";
  entry += out.metrics_json;
  if (!out.time_series_json.empty()) {
    entry += ", \"time_series\": ";
    entry += out.time_series_json;
  }
  entry += "}";
  g_run_entries.push_back(std::move(entry));
}

}  // namespace

BenchTime BenchTime::FromEnv() {
  BenchTime t;
  const char* quick = std::getenv("P4DB_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    t.warmup = 1 * kMillisecond;
    t.measure = 3 * kMillisecond;
  }
  return t;
}

void ParseBenchArgs(int argc, char** argv) {
  constexpr std::string_view kTrace = "--trace=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, kTrace.size()) == kTrace) {
      g_trace_path = std::string(arg.substr(kTrace.size()));
    }
  }
}

const std::string& TracePath() { return g_trace_path; }

RunOutput RunWorkload(const core::SystemConfig& config, wl::Workload* workload,
                      size_t sample_size, size_t max_hot_items,
                      const BenchTime& time) {
  core::Engine engine(config);
  engine.SetWorkload(workload);
  trace::Sampler& sampler = engine.EnableTimeSeries(kSamplerTick);
  const bool capture_trace = !g_trace_path.empty() && !g_trace_consumed &&
                             config.mode == core::EngineMode::kP4db;
  if (capture_trace) engine.tracer().EnableFull();
  RunOutput out;
  out.offload = engine.Offload(sample_size, max_hot_items);
  const auto wall_start = std::chrono::steady_clock::now();
  out.metrics = engine.Run(time.warmup, time.measure);
  const auto wall_end = std::chrono::steady_clock::now();
  out.pipeline = engine.pipeline().stats();
  out.throughput = out.metrics.Throughput(time.measure);
  out.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  out.sim_events = engine.simulator().executed_events();
  out.events_per_sec =
      out.wall_seconds > 0
          ? static_cast<double>(out.sim_events) / out.wall_seconds
          : 0;
  // Published into the registry AFTER Run so the harness speed rides along
  // in every BENCH_<name>.json registry dump (Run resets the registry at
  // the start of the measured window).
  engine.metrics_registry()
      .counter("harness.events_per_sec")
      .Set(static_cast<uint64_t>(out.events_per_sec));
  engine.metrics_registry()
      .counter("harness.wall_us")
      .Set(static_cast<uint64_t>(out.wall_seconds * 1e6));
  out.metrics_json = engine.metrics_registry().ToJson();
  out.time_series_json = sampler.ToJson();
  if (capture_trace) {
    g_trace_consumed = true;
    if (engine.tracer().ExportChromeTrace(g_trace_path, &sampler)) {
      std::printf("[trace] wrote %s (%llu spans, %llu dropped) — open in "
                  "Perfetto or chrome://tracing\n",
                  g_trace_path.c_str(),
                  static_cast<unsigned long long>(engine.tracer().size()),
                  static_cast<unsigned long long>(engine.tracer().dropped()));
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n",
                   g_trace_path.c_str());
    }
  }
  RecordRun(config, *workload, out);
  return out;
}

core::SystemConfig PaperCluster(core::EngineMode mode) {
  core::SystemConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;
  cfg.seed = 42;
  return cfg;
}

size_t YcsbHotItems(const wl::YcsbConfig& cfg, uint16_t num_nodes) {
  return static_cast<size_t>(cfg.hot_keys_per_node) * num_nodes;
}

size_t SmallBankHotItems(const wl::SmallBankConfig& cfg, uint16_t num_nodes) {
  // savings + checking per hot account.
  return 2ull * cfg.hot_accounts_per_node * num_nodes;
}

void PrintBanner(const char* figure, const char* description) {
  if (g_bench_name.empty()) {
    g_bench_name = SanitizeBenchName(figure);
    std::atexit(FlushBenchJson);
  }
  std::printf("================================================================"
              "================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Setup: 8 nodes, ToR switch simulator; throughput = committed "
              "txn/s over the\nmeasured window. Absolute values are "
              "simulator-calibrated; compare SHAPES with\nthe paper (see "
              "EXPERIMENTS.md).\n");
  std::printf("================================================================"
              "================\n");
}

void PrintSectionHeader(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

void AppendRunEntry(const std::string& json_entry) {
  g_run_entries.push_back(json_entry);
}

}  // namespace p4db::bench
