#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/json_util.h"

namespace p4db::bench {

namespace {

// Machine-readable output: PrintBanner names the benchmark, every
// RunWorkload appends one entry, and an atexit hook flushes the collected
// runs to BENCH_<name>.json next to the binary's working directory.
std::string g_bench_name;                // sanitized, e.g. "fig11_ycsb"
std::vector<std::string> g_run_entries;  // one JSON object per run

std::string SanitizeBenchName(const char* figure) {
  std::string out;
  bool last_was_sep = true;  // swallow leading separators
  for (const char* p = figure; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
      last_was_sep = false;
    } else if (!last_was_sep) {
      out.push_back('_');
      last_was_sep = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? std::string("bench") : out;
}

// --trace=PATH state: the first kP4db run of the process records a full
// trace and exports it there.
std::string g_trace_path;
bool g_trace_consumed = false;

// --threads=N state (0 = legacy runtime).
int g_threads = 0;

// --open-loop / --offered-load state (0 = closed loop) and --batch=N
// (1 = batching off).
double g_offered_load = 0.0;
uint32_t g_batch_size = 1;

// --int / --int-wire-cost state (both off = historical byte-identical runs).
bool g_int_enabled = false;
bool g_int_wire_cost = false;

// Default cluster-wide rate for a bare `--open-loop`: near the 8-node
// PaperCluster knee, so the flag alone produces an interesting run.
constexpr double kDefaultOfferedLoad = 4e6;

// Writes `content` via a temp file + rename so a reader (perf gate, another
// bench run tailing the file) never observes a half-written JSON document.
bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void FlushBenchJson() {
  if (g_bench_name.empty()) return;
  const std::string path = "BENCH_" + g_bench_name + ".json";
  std::string doc = "{\"bench\": \"" + JsonEscape(g_bench_name) +
                    "\", \"runs\": [";
  for (size_t i = 0; i < g_run_entries.size(); ++i) {
    doc += i == 0 ? "\n  " : ",\n  ";
    doc += g_run_entries[i];
  }
  doc += "\n]}\n";
  WriteFileAtomic(path, doc);
}

void RecordRun(const core::SystemConfig& config, const wl::Workload& workload,
               const RunOutput& out) {
  std::string entry = "{";
  entry += "\"mode\": \"";
  entry += JsonEscape(core::EngineModeName(config.mode));
  entry += "\", \"cc\": \"";
  entry += JsonEscape(core::CcProtocolName(config.cc_protocol));
  entry += "\", \"workload\": \"";
  entry += JsonEscape(workload.name());
  entry += "\"";
  char buf[64];
  if (config.threads > 0) {
    // Key present only for parallel-runtime runs so legacy entries (and
    // their committed baselines) keep the historical shape.
    std::snprintf(buf, sizeof(buf), ", \"threads\": %d", config.threads);
    entry += buf;
  }
  if (config.open_loop.enabled) {
    // Same rule as "threads": mode-specific keys only when the mode is on.
    std::snprintf(buf, sizeof(buf), ", \"offered_load\": %.0f",
                  config.open_loop.offered_load);
    entry += buf;
  }
  if (config.batch.size > 1) {
    std::snprintf(buf, sizeof(buf), ", \"batch\": %u", config.batch.size);
    entry += buf;
  }
  if (config.int_telemetry.enabled) {
    entry += config.int_telemetry.wire_cost ? ", \"int\": \"wire_cost\""
                                            : ", \"int\": \"postcard\"";
  }
  entry += ", \"throughput\": ";
  std::snprintf(buf, sizeof(buf), "%.1f", out.throughput);
  entry += buf;
  entry += ", \"committed\": ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(out.metrics.committed));
  entry += buf;
  entry += ", \"abort_rate\": ";
  std::snprintf(buf, sizeof(buf), "%.4f", out.metrics.AbortRate());
  entry += buf;
  entry += ", \"wall_seconds\": ";
  std::snprintf(buf, sizeof(buf), "%.6f", out.wall_seconds);
  entry += buf;
  entry += ", \"events_per_sec\": ";
  std::snprintf(buf, sizeof(buf), "%.0f", out.events_per_sec);
  entry += buf;
  entry += ", \"registry\": ";
  entry += out.metrics_json;
  if (!out.time_series_json.empty()) {
    entry += ", \"time_series\": ";
    entry += out.time_series_json;
  }
  if (!out.critical_path_json.empty()) {
    entry += ", \"critical_path\": ";
    entry += out.critical_path_json;
  }
  entry += "}";
  g_run_entries.push_back(std::move(entry));
}

}  // namespace

BenchTime BenchTime::FromEnv() {
  BenchTime t;
  const char* quick = std::getenv("P4DB_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    t.warmup = 1 * kMillisecond;
    t.measure = 3 * kMillisecond;
  }
  return t;
}

void ParseBenchArgs(int argc, char** argv) {
  constexpr std::string_view kTrace = "--trace=";
  constexpr std::string_view kThreads = "--threads=";
  constexpr std::string_view kOpenLoop = "--open-loop=";
  constexpr std::string_view kOfferedLoad = "--offered-load=";
  constexpr std::string_view kBatch = "--batch=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, kTrace.size()) == kTrace) {
      g_trace_path = std::string(arg.substr(kTrace.size()));
    } else if (arg.substr(0, kThreads.size()) == kThreads) {
      g_threads = std::atoi(std::string(arg.substr(kThreads.size())).c_str());
      if (g_threads < 0) g_threads = 0;
    } else if (arg == "--open-loop") {
      if (g_offered_load <= 0) g_offered_load = kDefaultOfferedLoad;
    } else if (arg.substr(0, kOpenLoop.size()) == kOpenLoop) {
      g_offered_load = std::atof(
          std::string(arg.substr(kOpenLoop.size())).c_str());
      if (g_offered_load < 0) g_offered_load = 0;
    } else if (arg.substr(0, kOfferedLoad.size()) == kOfferedLoad) {
      g_offered_load = std::atof(
          std::string(arg.substr(kOfferedLoad.size())).c_str());
      if (g_offered_load < 0) g_offered_load = 0;
    } else if (arg == "--int") {
      g_int_enabled = true;
    } else if (arg == "--int-wire-cost") {
      g_int_enabled = true;
      g_int_wire_cost = true;
    } else if (arg.substr(0, kBatch.size()) == kBatch) {
      const int v = std::atoi(std::string(arg.substr(kBatch.size())).c_str());
      g_batch_size = v < 1 ? 1
                           : std::min<uint32_t>(
                                 static_cast<uint32_t>(v),
                                 core::BatchConfig::kMaxBatchSize);
    }
  }
}

const std::string& TracePath() { return g_trace_path; }

int BenchThreads() { return g_threads; }

double BenchOfferedLoad() { return g_offered_load; }

uint32_t BenchBatchSize() { return g_batch_size; }

bool BenchIntEnabled() { return g_int_enabled; }

bool BenchIntWireCost() { return g_int_wire_cost; }

RunOutput RunWorkload(const core::SystemConfig& config, wl::Workload* workload,
                      size_t sample_size, size_t max_hot_items,
                      const BenchTime& time) {
  core::SystemConfig cfg = config;
  // --threads=N opts every compatible run into the parallel sharded
  // runtime; the remaining mode/protocol/workload combinations stay on the
  // legacy runtime (an explicit config.threads is honored as-is).
  if (cfg.threads == 0 && g_threads > 0 &&
      cfg.cc_protocol == core::CcProtocol::k2pl &&
      (cfg.mode == core::EngineMode::kP4db ||
       cfg.mode == core::EngineMode::kNoSwitch) &&
      workload->ThreadSafeGeneration()) {
    cfg.threads = g_threads;
  }
  // --open-loop / --offered-load switches any run to open-loop arrivals;
  // --batch=N arms the egress batcher on the runs that support it.
  if (!cfg.open_loop.enabled && g_offered_load > 0) {
    cfg.open_loop.enabled = true;
    cfg.open_loop.offered_load = g_offered_load;
  }
  if (cfg.batch.size == 1 && g_batch_size > 1 &&
      cfg.mode == core::EngineMode::kP4db &&
      cfg.cc_protocol == core::CcProtocol::k2pl && cfg.num_switches == 1) {
    cfg.batch.size = g_batch_size;
  }
  // --int arms telemetry on the runs that support it (same constraint set
  // as ValidateConfig: switch traffic under 2PL); baselines and other modes
  // run byte-identical to an INT-free binary.
  if (!cfg.int_telemetry.enabled && g_int_enabled &&
      cfg.mode == core::EngineMode::kP4db &&
      cfg.cc_protocol == core::CcProtocol::k2pl) {
    cfg.int_telemetry.enabled = true;
    cfg.int_telemetry.wire_cost = g_int_wire_cost;
  }
  core::Engine engine(cfg);
  engine.SetWorkload(workload);
  trace::Sampler& sampler = engine.EnableTimeSeries(kSamplerTick);
  const bool capture_trace = !g_trace_path.empty() && !g_trace_consumed &&
                             cfg.mode == core::EngineMode::kP4db;
  if (capture_trace) engine.EnableFullTrace();
  RunOutput out;
  out.offload = engine.Offload(sample_size, max_hot_items);
  const auto wall_start = std::chrono::steady_clock::now();
  out.metrics = engine.Run(time.warmup, time.measure);
  const auto wall_end = std::chrono::steady_clock::now();
  out.pipeline = engine.pipeline().stats();
  out.throughput = out.metrics.Throughput(time.measure);
  out.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  out.sim_events = engine.TotalExecutedEvents();
  out.events_per_sec =
      out.wall_seconds > 0
          ? static_cast<double>(out.sim_events) / out.wall_seconds
          : 0;
  // Published into the registry AFTER Run so the harness speed rides along
  // in every BENCH_<name>.json registry dump (Run resets the registry at
  // the start of the measured window).
  engine.metrics_registry()
      .counter("harness.events_per_sec")
      .Set(static_cast<uint64_t>(out.events_per_sec));
  engine.metrics_registry()
      .counter("harness.wall_us")
      .Set(static_cast<uint64_t>(out.wall_seconds * 1e6));
  out.metrics_json = engine.metrics_registry().ToJson();
  out.time_series_json = sampler.ToJson();
  out.critical_path_json = engine.CriticalPathJson();
  if (capture_trace) {
    g_trace_consumed = true;
    if (WriteFileAtomic(g_trace_path, engine.TraceJson())) {
      std::printf("[trace] wrote %s — open in Perfetto or "
                  "chrome://tracing\n",
                  g_trace_path.c_str());
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n",
                   g_trace_path.c_str());
    }
  }
  RecordRun(cfg, *workload, out);
  return out;
}

core::SystemConfig PaperCluster(core::EngineMode mode) {
  core::SystemConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;
  cfg.seed = 42;
  return cfg;
}

size_t YcsbHotItems(const wl::YcsbConfig& cfg, uint16_t num_nodes) {
  return static_cast<size_t>(cfg.hot_keys_per_node) * num_nodes;
}

size_t SmallBankHotItems(const wl::SmallBankConfig& cfg, uint16_t num_nodes) {
  // savings + checking per hot account.
  return 2ull * cfg.hot_accounts_per_node * num_nodes;
}

void PrintBanner(const char* figure, const char* description) {
  if (g_bench_name.empty()) {
    g_bench_name = SanitizeBenchName(figure);
    std::atexit(FlushBenchJson);
  }
  std::printf("================================================================"
              "================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Setup: 8 nodes, ToR switch simulator; throughput = committed "
              "txn/s over the\nmeasured window. Absolute values are "
              "simulator-calibrated; compare SHAPES with\nthe paper (see "
              "EXPERIMENTS.md).\n");
  std::printf("================================================================"
              "================\n");
}

void PrintSectionHeader(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

void AppendRunEntry(const std::string& json_entry) {
  g_run_entries.push_back(json_entry);
}

}  // namespace p4db::bench
