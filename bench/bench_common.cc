#include "bench_common.h"

#include <cstdlib>

namespace p4db::bench {

BenchTime BenchTime::FromEnv() {
  BenchTime t;
  const char* quick = std::getenv("P4DB_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    t.warmup = 1 * kMillisecond;
    t.measure = 3 * kMillisecond;
  }
  return t;
}

RunOutput RunWorkload(const core::SystemConfig& config, wl::Workload* workload,
                      size_t sample_size, size_t max_hot_items,
                      const BenchTime& time) {
  core::Engine engine(config);
  engine.SetWorkload(workload);
  RunOutput out;
  out.offload = engine.Offload(sample_size, max_hot_items);
  out.metrics = engine.Run(time.warmup, time.measure);
  out.pipeline = engine.pipeline().stats();
  out.throughput = out.metrics.Throughput(time.measure);
  return out;
}

core::SystemConfig PaperCluster(core::EngineMode mode) {
  core::SystemConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;
  cfg.seed = 42;
  return cfg;
}

size_t YcsbHotItems(const wl::YcsbConfig& cfg, uint16_t num_nodes) {
  return static_cast<size_t>(cfg.hot_keys_per_node) * num_nodes;
}

size_t SmallBankHotItems(const wl::SmallBankConfig& cfg, uint16_t num_nodes) {
  // savings + checking per hot account.
  return 2ull * cfg.hot_accounts_per_node * num_nodes;
}

void PrintBanner(const char* figure, const char* description) {
  std::printf("================================================================"
              "================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Setup: 8 nodes, ToR switch simulator; throughput = committed "
              "txn/s over the\nmeasured window. Absolute values are "
              "simulator-calibrated; compare SHAPES with\nthe paper (see "
              "EXPERIMENTS.md).\n");
  std::printf("================================================================"
              "================\n");
}

void PrintSectionHeader(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

}  // namespace p4db::bench
