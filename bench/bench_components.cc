// Component micro-benchmarks (google-benchmark): the building blocks whose
// costs matter for the simulator itself and for the offline offload step.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/hotset.h"
#include "core/layout.h"
#include "core/maxcut.h"
#include "core/partition_manager.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "switchsim/packet.h"
#include "switchsim/pipeline.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

namespace p4db {
namespace {

// ----------------------------------------------------------- primitives --

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(static_cast<uint64_t>(state.range(0)), 0.99);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(rng));
}
BENCHMARK(BM_ZipfNext)->Arg(1000)->Arg(1000000);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(3);
  for (auto _ : state) h.Record(static_cast<int64_t>(rng.NextRange(1 << 20)));
  benchmark::DoNotOptimize(h.Mean());
}
BENCHMARK(BM_HistogramRecord);

// ----------------------------------------------------------- wire codec --

sw::SwitchTxn MakeTxn(size_t instrs) {
  sw::SwitchTxn txn;
  Rng rng(4);
  for (size_t i = 0; i < instrs; ++i) {
    sw::Instruction in;
    in.op = sw::OpCode::kAdd;
    in.addr = sw::RegisterAddress{static_cast<uint8_t>(i % 20),
                                  static_cast<uint8_t>(i % 2),
                                  static_cast<uint32_t>(rng.NextRange(1000))};
    in.operand = static_cast<Value64>(rng.Next());
    txn.instrs.push_back(in);
  }
  return txn;
}

void BM_PacketEncode(benchmark::State& state) {
  const sw::SwitchTxn txn = MakeTxn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::PacketCodec::Encode(txn));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(sw::PacketCodec::EncodedSize(txn)));
}
BENCHMARK(BM_PacketEncode)->Arg(2)->Arg(8)->Arg(32);

void BM_PacketDecode(benchmark::State& state) {
  const auto bytes =
      sw::PacketCodec::Encode(MakeTxn(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto decoded = sw::PacketCodec::Decode(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_PacketDecode)->Arg(2)->Arg(8)->Arg(32);

// -------------------------------------------------------- switch engine --

void BM_PipelineSinglePassTxn(benchmark::State& state) {
  sim::Simulator sim;
  sw::PipelineConfig cfg;
  sw::Pipeline pipe(&sim, cfg);
  const sw::SwitchTxn txn = MakeTxn(8);
  for (auto _ : state) {
    sw::SwitchTxn copy = txn;
    copy.is_multipass = sw::Pipeline::CountPasses(copy.instrs) > 1;
    copy.lock_mask = sw::LockDemandFor(cfg, copy.instrs);
    auto fut = pipe.Submit(std::move(copy));
    sim.Run();
    benchmark::DoNotOptimize(&fut);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineSinglePassTxn);

void BM_CountPasses(benchmark::State& state) {
  const sw::SwitchTxn txn = MakeTxn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::Pipeline::CountPasses(txn.instrs));
  }
}
BENCHMARK(BM_CountPasses)->Arg(8)->Arg(32);

// ------------------------------------------------------ offload pipeline --

core::AccessGraph YcsbGraph(uint32_t hot_keys) {
  wl::YcsbConfig wcfg;
  wcfg.hot_keys_per_node = hot_keys / 8;
  wl::Ycsb ycsb(wcfg);
  db::Catalog catalog(8);
  ycsb.Setup(&catalog);
  const auto sample = ycsb.Sample(20000, 7, 8);
  core::HotSetDetector detector;
  for (const auto& txn : sample) detector.Observe(txn);
  return core::HotSetDetector::BuildGraph(detector.TopK(hot_keys), sample);
}

void BM_MaxCut(benchmark::State& state) {
  const core::AccessGraph graph =
      YcsbGraph(static_cast<uint32_t>(state.range(0)));
  core::MaxCutConfig cfg;
  cfg.num_parts = 40;
  cfg.num_restarts = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SolveMaxCut(graph, cfg).cut_weight);
  }
}
BENCHMARK(BM_MaxCut)->Arg(80)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_LayoutPlanOptimal(benchmark::State& state) {
  const core::AccessGraph graph =
      YcsbGraph(static_cast<uint32_t>(state.range(0)));
  sw::PipelineConfig pipe;
  core::LayoutPlanner planner(pipe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanOptimal(graph, 13).cut_weight);
  }
}
BENCHMARK(BM_LayoutPlanOptimal)->Arg(80)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_CompileHotTxn(benchmark::State& state) {
  db::Catalog catalog(8);
  wl::SmallBankConfig scfg;
  wl::SmallBank sb(scfg);
  sb.Setup(&catalog);
  sw::PipelineConfig pipe;
  core::PartitionManager pm(&catalog, &pipe);
  // Register the two accounts' balances as hot.
  pm.RegisterHotItem({TupleId{sb.savings_table(), 1}, 0},
                     sw::RegisterAddress{0, 0, 0}, 0);
  pm.RegisterHotItem({TupleId{sb.checking_table(), 1}, 0},
                     sw::RegisterAddress{3, 0, 0}, 0);
  pm.RegisterHotItem({TupleId{sb.checking_table(), 2}, 0},
                     sw::RegisterAddress{7, 0, 0}, 0);
  const db::Transaction txn = sb.Make(wl::SmallBank::kAmalgamate, 1, 2, 10);
  uint32_t seq = 0;
  for (auto _ : state) {
    auto compiled = pm.Compile(txn, {}, 0, seq++);
    benchmark::DoNotOptimize(compiled.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CompileHotTxn);

void BM_WorkloadNext(benchmark::State& state) {
  db::Catalog catalog(8);
  wl::YcsbConfig wcfg;
  wl::Ycsb ycsb(wcfg);
  ycsb.Setup(&catalog);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ycsb.Next(rng, 0).ops.size());
  }
}
BENCHMARK(BM_WorkloadNext);

}  // namespace
}  // namespace p4db

BENCHMARK_MAIN();
