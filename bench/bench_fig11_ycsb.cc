// Figure 11 (speedups) + Figure 19 (raw throughput): YCSB A/B/C.
// Upper row: varying contention (worker threads per node, 8 -> 20).
// Lower row: varying fraction of distributed transactions (0% -> 100%).
// Series: P4DB and LM-Switch, both relative to No-Switch.

#include "bench_common.h"

namespace p4db::bench {
namespace {

RunOutput Run(core::EngineMode mode, char variant, uint16_t workers,
              double distributed, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  cfg.workers_per_node = workers;
  wl::YcsbConfig wcfg;
  wcfg.variant = variant;
  wcfg.distributed_fraction = distributed;
  wl::Ycsb workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     YcsbHotItems(wcfg, cfg.num_nodes), time);
}

void SweepContention(const BenchTime& time) {
  for (char variant : {'A', 'B', 'C'}) {
    PrintSectionHeader(std::string("YCSB-") + variant +
                       ": varying contention (workers/node), 20% distributed");
    std::printf("%8s %14s %14s %14s %10s %10s\n", "workers", "NoSwitch(tx/s)",
                "LM-Sw(tx/s)", "P4DB(tx/s)", "LM-spdup", "P4-spdup");
    for (uint16_t workers : {8, 12, 16, 20}) {
      const RunOutput base =
          Run(core::EngineMode::kNoSwitch, variant, workers, 0.2, time);
      const RunOutput lm =
          Run(core::EngineMode::kLmSwitch, variant, workers, 0.2, time);
      const RunOutput p4 =
          Run(core::EngineMode::kP4db, variant, workers, 0.2, time);
      std::printf("%8u %14.0f %14.0f %14.0f %9.2fx %9.2fx\n", workers,
                  base.throughput, lm.throughput, p4.throughput,
                  Speedup(lm.throughput, base.throughput),
                  Speedup(p4.throughput, base.throughput));
    }
  }
}

void SweepDistributed(const BenchTime& time) {
  for (char variant : {'A', 'B', 'C'}) {
    PrintSectionHeader(std::string("YCSB-") + variant +
                       ": varying distributed transactions, 20 workers/node");
    std::printf("%8s %14s %14s %14s %10s %10s\n", "dist%", "NoSwitch(tx/s)",
                "LM-Sw(tx/s)", "P4DB(tx/s)", "LM-spdup", "P4-spdup");
    for (double dist : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      const RunOutput base =
          Run(core::EngineMode::kNoSwitch, variant, 20, dist, time);
      const RunOutput lm =
          Run(core::EngineMode::kLmSwitch, variant, 20, dist, time);
      const RunOutput p4 =
          Run(core::EngineMode::kP4db, variant, 20, dist, time);
      std::printf("%7.0f%% %14.0f %14.0f %14.0f %9.2fx %9.2fx\n", dist * 100,
                  base.throughput, lm.throughput, p4.throughput,
                  Speedup(lm.throughput, base.throughput),
                  Speedup(p4.throughput, base.throughput));
    }
  }
}

}  // namespace
}  // namespace p4db::bench

int main(int argc, char** argv) {
  using namespace p4db::bench;
  ParseBenchArgs(argc, argv);
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 11 + Figure 19",
              "YCSB speedup over No-Switch and raw throughput");
  SweepContention(time);
  SweepDistributed(time);
  return 0;
}
