// Robustness experiment (Section 6.1, Appendix A.3): throughput timeline
// around a scripted mid-run switch reboot. The switch goes dark for a fixed
// window, traffic degrades to host-side execution, and the control plane
// re-provisions the registers from the WALs while the cluster keeps
// running. Reported: steady-state baseline, dip depth during the dark
// window, and time-to-recover back to 90% of baseline.

#include "bench_common.h"

#include <algorithm>
#include <string>
#include <vector>

#include "net/fault_injector.h"

namespace p4db::bench {
namespace {

constexpr SimTime kBucket = 100 * kMicrosecond;
constexpr SimTime kDowntime = 500 * kMicrosecond;

double RatePerSecond(uint64_t commits) {
  return static_cast<double>(commits) *
         (static_cast<double>(kSecond) / static_cast<double>(kBucket));
}

void RunFailover(const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.distributed_fraction = 0.2;
  wl::Ycsb workload(wcfg);

  const SimTime fault_at = time.warmup + time.measure / 3;

  core::Engine engine(cfg);
  engine.SetWorkload(&workload);
  engine.Offload(20000, YcsbHotItems(wcfg, cfg.num_nodes));

  net::FaultSchedule schedule;
  schedule.events.push_back(
      net::FaultEvent::SwitchReboot(fault_at, kDowntime));
  engine.InstallFaultSchedule(schedule);

  // The shared virtual-time sampler snapshots the commit counter every
  // bucket across the measured window. The ticks only read, so the observed
  // run is the run.
  trace::Sampler& sampler = engine.EnableTimeSeries(kBucket);

  engine.Run(time.warmup, time.measure);

  // Bucket i covers (warmup + i*b, warmup + (i+1)*b]: the "committed" rate
  // series is the per-tick delta of the commit counter.
  const std::vector<int64_t>* committed_series = sampler.Find("committed");
  std::vector<uint64_t> rates;
  for (const int64_t d : *committed_series) {
    rates.push_back(static_cast<uint64_t>(d));
  }
  const size_t fault_idx =
      static_cast<size_t>((fault_at - time.warmup) / kBucket);

  // Baseline: mean pre-fault rate once the closed loop has ramped.
  double baseline = 0;
  const size_t base_lo = 2;
  for (size_t i = base_lo; i < fault_idx; ++i) baseline += rates[i];
  baseline /= static_cast<double>(fault_idx - base_lo);

  // Dip: worst bucket from the crash until shortly after failback.
  const size_t dip_hi =
      std::min(rates.size(),
               fault_idx + static_cast<size_t>(kDowntime / kBucket) + 3);
  uint64_t min_rate = rates[fault_idx];
  for (size_t i = fault_idx; i < dip_hi; ++i) {
    min_rate = std::min(min_rate, rates[i]);
  }
  const double dip_depth =
      baseline <= 0 ? 0 : 1.0 - static_cast<double>(min_rate) / baseline;

  // Recovery: first bucket at/after the crash back within 90% of baseline.
  SimTime time_to_recover = -1;
  for (size_t i = fault_idx; i < rates.size(); ++i) {
    if (static_cast<double>(rates[i]) >= 0.9 * baseline) {
      time_to_recover = static_cast<SimTime>(i + 1) * kBucket +
                        time.warmup - fault_at;
      break;
    }
  }

  PrintSectionHeader("Throughput timeline around the reboot (100us buckets)");
  std::printf("%12s %14s %s\n", "t-fault(us)", "rate(tx/s)", "phase");
  const size_t show_lo = fault_idx >= 3 ? fault_idx - 3 : 0;
  const size_t show_hi = std::min(rates.size(), dip_hi + 12);
  for (size_t i = show_lo; i < show_hi; ++i) {
    const SimTime rel =
        static_cast<SimTime>(i) * kBucket + time.warmup - fault_at;
    const char* phase = rel < 0              ? "pre-fault"
                        : rel < kDowntime    ? "switch dark"
                                             : "failed back";
    std::printf("%12lld %14.0f %s\n", static_cast<long long>(rel / 1000),
                RatePerSecond(rates[i]), phase);
  }

  const uint64_t stale =
      engine.metrics_registry().counter("switch.stale_epoch_drops").value();
  const uint64_t timeouts =
      engine.metrics_registry().counter("engine.txn_timeouts").value();
  const uint64_t failovers =
      engine.metrics_registry().counter("engine.failovers").value();

  PrintSectionHeader("Failover summary");
  const double baseline_tps =
      baseline * (static_cast<double>(kSecond) / static_cast<double>(kBucket));
  std::printf("  baseline            %14.0f tx/s\n", baseline_tps);
  std::printf("  worst bucket        %14.0f tx/s\n",
              RatePerSecond(min_rate));
  std::printf("  dip depth           %14.1f %%\n", dip_depth * 100);
  std::printf("  time to recover     %14.0f us (to 90%% of baseline)\n",
              static_cast<double>(time_to_recover) / 1000.0);
  std::printf("  stale epoch drops   %14llu\n",
              static_cast<unsigned long long>(stale));
  std::printf("  txn timeouts        %14llu\n",
              static_cast<unsigned long long>(timeouts));
  std::printf("  degraded (failover) %14llu txns\n",
              static_cast<unsigned long long>(failovers));

  std::string entry = "{\"mode\": \"P4DB\", \"workload\": \"ycsb-A\"";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ", \"fault_at_ns\": %lld, \"downtime_ns\": %lld, "
                "\"bucket_ns\": %lld, \"baseline_tps\": %.0f, "
                "\"min_tps\": %.0f, \"dip_depth\": %.4f, "
                "\"time_to_recover_ns\": %lld",
                static_cast<long long>(fault_at),
                static_cast<long long>(kDowntime),
                static_cast<long long>(kBucket), baseline_tps,
                RatePerSecond(min_rate), dip_depth,
                static_cast<long long>(time_to_recover));
  entry += buf;
  entry += ", \"bucket_commits\": [";
  for (size_t i = 0; i < rates.size(); ++i) {
    if (i != 0) entry += ", ";
    entry += std::to_string(rates[i]);
  }
  entry += "], \"registry\": ";
  entry += engine.metrics_registry().ToJson();
  entry += ", \"time_series\": ";
  entry += sampler.ToJson();
  entry += "}";
  AppendRunEntry(entry);
}

}  // namespace
}  // namespace p4db::bench

int main(int argc, char** argv) {
  using namespace p4db::bench;
  ParseBenchArgs(argc, argv);
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("failover",
              "online failover: switch reboot mid-run, WAL re-provisioning");
  RunFailover(time);
  return 0;
}
