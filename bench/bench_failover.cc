// Robustness experiment (Section 6.1, Appendix A.3): throughput timeline
// around a scripted mid-run switch reboot, in two configurations.
//
//  * failover_dark (1 switch): the switch goes dark for a fixed window,
//    traffic degrades to host-side execution, and the control plane
//    re-provisions the registers from the WALs while the cluster keeps
//    running — the deep historical dip.
//  * failover_replicated (2 switches): the same reboot hits the PRIMARY of
//    a replicated pair; the backup promotes through an epoch-fenced view
//    change after view_change_delay, so the dip collapses to a brief
//    fenced pause.
//
// Reported per scenario: steady-state baseline, dip depth during the
// fault window, and time-to-recover back to 90% of baseline. Both runs
// are seeded and fully deterministic, so committed counts and dip depths
// are gated by tools/perf_gate.py.

#include "bench_common.h"

#include <algorithm>
#include <string>
#include <vector>

#include "net/fault_injector.h"

namespace p4db::bench {
namespace {

constexpr SimTime kBucket = 100 * kMicrosecond;
constexpr SimTime kDowntime = 500 * kMicrosecond;

double RatePerSecond(uint64_t commits) {
  return static_cast<double>(commits) *
         (static_cast<double>(kSecond) / static_cast<double>(kBucket));
}

void RunFailover(const BenchTime& time, uint16_t num_switches,
                 const char* scenario) {
  core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
  cfg.num_switches = num_switches;
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.distributed_fraction = 0.2;
  wl::Ycsb workload(wcfg);

  const SimTime fault_at = time.warmup + time.measure / 3;

  core::Engine engine(cfg);
  engine.SetWorkload(&workload);
  engine.Offload(20000, YcsbHotItems(wcfg, cfg.num_nodes));

  net::FaultSchedule schedule;
  schedule.events.push_back(
      net::FaultEvent::SwitchReboot(fault_at, kDowntime));
  engine.InstallFaultSchedule(schedule);

  // The shared virtual-time sampler snapshots the commit counter every
  // bucket across the measured window. The ticks only read, so the observed
  // run is the run.
  trace::Sampler& sampler = engine.EnableTimeSeries(kBucket);

  const core::Metrics metrics = engine.Run(time.warmup, time.measure);

  // Bucket i covers (warmup + i*b, warmup + (i+1)*b]: the "committed" rate
  // series is the per-tick delta of the commit counter.
  const std::vector<int64_t>* committed_series = sampler.Find("committed");
  std::vector<uint64_t> rates;
  for (const int64_t d : *committed_series) {
    rates.push_back(static_cast<uint64_t>(d));
  }
  const size_t fault_idx =
      static_cast<size_t>((fault_at - time.warmup) / kBucket);

  // Baseline: mean pre-fault rate once the closed loop has ramped.
  double baseline = 0;
  const size_t base_lo = 2;
  for (size_t i = base_lo; i < fault_idx; ++i) baseline += rates[i];
  baseline /= static_cast<double>(fault_idx - base_lo);

  // Dip: worst bucket from the crash until shortly after failback.
  const size_t dip_hi =
      std::min(rates.size(),
               fault_idx + static_cast<size_t>(kDowntime / kBucket) + 3);
  uint64_t min_rate = rates[fault_idx];
  for (size_t i = fault_idx; i < dip_hi; ++i) {
    min_rate = std::min(min_rate, rates[i]);
  }
  const double dip_depth =
      baseline <= 0 ? 0 : 1.0 - static_cast<double>(min_rate) / baseline;

  // Recovery: first bucket at/after the crash back within 90% of baseline.
  SimTime time_to_recover = -1;
  for (size_t i = fault_idx; i < rates.size(); ++i) {
    if (static_cast<double>(rates[i]) >= 0.9 * baseline) {
      time_to_recover = static_cast<SimTime>(i + 1) * kBucket +
                        time.warmup - fault_at;
      break;
    }
  }

  const bool replicated = num_switches > 1;
  std::printf("\n-- scenario: %s (%u switch%s) --\n", scenario, num_switches,
              num_switches == 1 ? "" : "es");
  PrintSectionHeader("Throughput timeline around the reboot (100us buckets)");
  std::printf("%12s %14s %s\n", "t-fault(us)", "rate(tx/s)", "phase");
  const size_t show_lo = fault_idx >= 3 ? fault_idx - 3 : 0;
  const size_t show_hi = std::min(rates.size(), dip_hi + 12);
  for (size_t i = show_lo; i < show_hi; ++i) {
    const SimTime rel =
        static_cast<SimTime>(i) * kBucket + time.warmup - fault_at;
    const char* phase =
        rel < 0           ? "pre-fault"
        : rel < kDowntime ? (replicated ? "view change" : "switch dark")
                          : (replicated ? "rejoined" : "failed back");
    std::printf("%12lld %14.0f %s\n", static_cast<long long>(rel / 1000),
                RatePerSecond(rates[i]), phase);
  }

  const uint64_t stale =
      engine.metrics_registry().counter("switch.stale_epoch_drops").value();
  const uint64_t timeouts =
      engine.metrics_registry().counter("engine.txn_timeouts").value();
  const uint64_t failovers =
      engine.metrics_registry().counter("engine.failovers").value();
  const uint64_t view_changes =
      engine.metrics_registry().counter("engine.view_changes").value();
  const uint64_t rep_applied =
      engine.metrics_registry().counter("switch.rep_records_applied").value();

  PrintSectionHeader("Failover summary");
  const double baseline_tps =
      baseline * (static_cast<double>(kSecond) / static_cast<double>(kBucket));
  std::printf("  baseline            %14.0f tx/s\n", baseline_tps);
  std::printf("  worst bucket        %14.0f tx/s\n",
              RatePerSecond(min_rate));
  std::printf("  dip depth           %14.1f %%\n", dip_depth * 100);
  std::printf("  time to recover     %14.0f us (to 90%% of baseline)\n",
              static_cast<double>(time_to_recover) / 1000.0);
  std::printf("  stale epoch drops   %14llu\n",
              static_cast<unsigned long long>(stale));
  std::printf("  txn timeouts        %14llu\n",
              static_cast<unsigned long long>(timeouts));
  std::printf("  degraded (failover) %14llu txns\n",
              static_cast<unsigned long long>(failovers));
  if (replicated) {
    std::printf("  view changes        %14llu\n",
                static_cast<unsigned long long>(view_changes));
    std::printf("  rep records applied %14llu\n",
                static_cast<unsigned long long>(rep_applied));
  }

  std::string entry = "{\"scenario\": \"";
  entry += scenario;
  entry += "\", \"mode\": \"P4DB\", \"workload\": \"ycsb-A\"";
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                ", \"num_switches\": %u, \"fault_at_ns\": %lld, "
                "\"downtime_ns\": %lld, "
                "\"bucket_ns\": %lld, \"committed\": %llu, "
                "\"baseline_tps\": %.0f, "
                "\"min_tps\": %.0f, \"dip_depth\": %.4f, "
                "\"time_to_recover_ns\": %lld, \"view_changes\": %llu",
                num_switches, static_cast<long long>(fault_at),
                static_cast<long long>(kDowntime),
                static_cast<long long>(kBucket),
                static_cast<unsigned long long>(metrics.committed),
                baseline_tps, RatePerSecond(min_rate), dip_depth,
                static_cast<long long>(time_to_recover),
                static_cast<unsigned long long>(view_changes));
  entry += buf;
  entry += ", \"bucket_commits\": [";
  for (size_t i = 0; i < rates.size(); ++i) {
    if (i != 0) entry += ", ";
    entry += std::to_string(rates[i]);
  }
  entry += "], \"registry\": ";
  entry += engine.metrics_registry().ToJson();
  entry += ", \"time_series\": ";
  entry += sampler.ToJson();
  entry += "}";
  AppendRunEntry(entry);
}

}  // namespace
}  // namespace p4db::bench

int main(int argc, char** argv) {
  using namespace p4db::bench;
  ParseBenchArgs(argc, argv);
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("failover",
              "online failover: switch reboot mid-run, WAL re-provisioning "
              "vs in-network replication");
  RunFailover(time, /*num_switches=*/1, "failover_dark");
  RunFailover(time, /*num_switches=*/2, "failover_replicated");
  return 0;
}
