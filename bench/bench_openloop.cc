// Open-loop latency-vs-offered-load knee curves (Section 7 methodology).
// A Poisson arrival process drives the 8-node PaperCluster at a ladder of
// offered loads; each point reports committed throughput and p50/p99/p999
// latency measured from the client's send instant (admission queueing
// included). The knee is the largest offered load the cluster still serves
// at >= 95% of the offered rate — past it, latency explodes and the
// admission queue sheds.
//
// Two series: egress batching off (batch=1, one packet per switch txn) and
// on (batch=8, node->switch request frames and switch->node response
// frames). The workload is the pure-hot YCSB-A mix the batcher targets
// (every transaction is switch-executed), and the hosts model a
// kernel-stack receiver (rx_service = 2us per packet) — the per-packet
// cost batching exists to amortize. Unbatched, each host absorbs at most
// 500k responses/s, capping the 8-node cluster at 4M txn/s; batching
// spreads that cost across the frame and pushes saturation to the switch
// pipeline's own limit.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"

namespace p4db::bench {
namespace {

constexpr uint32_t kBatchOn = 8;
constexpr uint16_t kSessionsPerNode = 64;
constexpr SimTime kHostRxService = 2 * kMicrosecond;
// Cluster-wide offered-load ladder in txn/s: below both knees to deep
// saturation for both series.
const std::vector<double> kLadder = {1e6, 2e6, 3e6, 4e6,
                                     5e6, 6e6, 7e6, 8e6};
constexpr double kKneeRatio = 0.95;

struct Point {
  double offered = 0;
  double committed = 0;  // txn/s over the measured window
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

Point RunPoint(double offered_load, uint32_t batch, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
  cfg.open_loop.enabled = true;
  cfg.open_loop.offered_load = offered_load;
  cfg.open_loop.sessions_per_node = kSessionsPerNode;
  cfg.batch.size = batch;
  cfg.network.rx_service = kHostRxService;
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.hot_txn_fraction = 1.0;
  wl::Ycsb workload(wcfg);
  const RunOutput r = RunWorkload(cfg, &workload, 20000,
                                  YcsbHotItems(wcfg, cfg.num_nodes), time);
  Point p;
  p.offered = offered_load;
  p.committed = r.throughput;
  p.p50_us = static_cast<double>(r.metrics.latency_all.P50()) / 1e3;
  p.p99_us = static_cast<double>(r.metrics.latency_all.P99()) / 1e3;
  p.p999_us = static_cast<double>(r.metrics.latency_all.P999()) / 1e3;
  return p;
}

/// Largest ladder index still served at >= kKneeRatio of the offered rate
/// (0 if even the lightest load saturates).
size_t KneeIndex(const std::vector<Point>& curve) {
  size_t knee = 0;
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].committed >= kKneeRatio * curve[i].offered) knee = i;
  }
  return knee;
}

std::vector<Point> Sweep(uint32_t batch, const BenchTime& time) {
  PrintSectionHeader("pure-hot YCSB-A open-loop sweep, batch=" +
                     std::to_string(batch));
  std::printf("%12s %12s %8s %10s %10s %10s\n", "offered(tx/s)",
              "committed", "ratio", "p50(us)", "p99(us)", "p999(us)");
  std::vector<Point> curve;
  for (double load : kLadder) {
    const Point p = RunPoint(load, batch, time);
    std::printf("%12.0f %12.0f %7.2f%% %10.1f %10.1f %10.1f\n", p.offered,
                p.committed, 100.0 * p.committed / p.offered, p.p50_us,
                p.p99_us, p.p999_us);
    curve.push_back(p);
  }
  const Point& knee = curve[KneeIndex(curve)];
  std::printf("knee: offered %.0f tx/s served at %.0f tx/s "
              "(p999 %.1f us)\n",
              knee.offered, knee.committed, knee.p999_us);
  return curve;
}

void AppendSummary(const char* scenario, const Point& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"scenario\": \"%s\", \"offered_load\": %.0f, "
                "\"throughput\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                "\"p999_us\": %.1f}",
                scenario, p.offered, p.committed, p.p50_us, p.p99_us,
                p.p999_us);
  AppendRunEntry(buf);
}

}  // namespace
}  // namespace p4db::bench

int main(int argc, char** argv) {
  using namespace p4db::bench;
  ParseBenchArgs(argc, argv);
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("openloop",
              "latency vs offered load: open-loop arrivals, egress batching, "
              "knee detection");

  const std::vector<Point> flat = Sweep(1, time);
  const std::vector<Point> batched = Sweep(kBatchOn, time);

  const size_t knee1 = KneeIndex(flat);
  const size_t kneeN = KneeIndex(batched);
  // Saturated throughput = what the cluster commits under the deepest
  // overload; the batching win is the per-frame (instead of per-packet)
  // host receive cost.
  const double sat1 = flat.back().committed;
  const double satN = batched.back().committed;
  // Tail latency well inside the stable region: the ladder point nearest
  // half the unbatched knee load.
  size_t half = 0;
  for (size_t i = 0; i < kLadder.size(); ++i) {
    if (std::abs(kLadder[i] - 0.5 * flat[knee1].offered) <
        std::abs(kLadder[half] - 0.5 * flat[knee1].offered)) {
      half = i;
    }
  }

  PrintSectionHeader("summary");
  std::printf("knee (batch=1):   %.0f tx/s offered, %.0f committed\n",
              flat[knee1].offered, flat[knee1].committed);
  std::printf("knee (batch=%u):   %.0f tx/s offered, %.0f committed\n",
              kBatchOn, batched[kneeN].offered, batched[kneeN].committed);
  std::printf("saturated committed: %.0f -> %.0f tx/s (%.2fx with "
              "batching)\n",
              sat1, satN, Speedup(satN, sat1));
  std::printf("p999 at half-knee (batch=1): %.1f us\n", flat[half].p999_us);

  AppendSummary("knee_batch1", flat[knee1]);
  AppendSummary("knee_batch8", batched[kneeN]);
  AppendSummary("half_knee_batch1", flat[half]);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"scenario\": \"summary\", \"saturated_batch1\": %.1f, "
                "\"saturated_batch8\": %.1f, \"saturation_speedup\": %.4f}",
                sat1, satN, Speedup(satN, sat1));
  AppendRunEntry(buf);
  return 0;
}
