// Figure 12: break-down of committed hot vs. cold transactions, YCSB A/B/C
// at 20 workers/node and 20% distributed. In No-Switch, hot-classified
// transactions struggle to commit under contention; in P4DB the committed
// mix matches the generated 75/25 hot/cold mix and the hot side never
// aborts.

#include "bench_common.h"

namespace p4db::bench {
namespace {

void Row(core::EngineMode mode, char variant, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::YcsbConfig wcfg;
  wcfg.variant = variant;
  wl::Ycsb workload(wcfg);
  const RunOutput r = RunWorkload(cfg, &workload, 20000,
                                  YcsbHotItems(wcfg, cfg.num_nodes), time);
  const auto& m = r.metrics;
  const double hot =
      static_cast<double>(m.committed_by_class[0]);  // TxnClass::kHot
  const double cold = static_cast<double>(m.committed_by_class[1]);
  const double total = hot + cold;
  const uint64_t hot_attempts = m.committed_by_class[0] + m.aborts_by_class[0];
  const uint64_t cold_attempts =
      m.committed_by_class[1] + m.aborts_by_class[1];
  std::printf("%-10s  YCSB-%c %12.0f %10.1f%% %10.1f%% %12.1f%% %12.1f%%\n",
              core::EngineModeName(mode), variant, r.throughput,
              total == 0 ? 0 : 100 * hot / total,
              total == 0 ? 0 : 100 * cold / total,
              hot_attempts == 0 ? 0 : 100.0 * hot / hot_attempts,
              cold_attempts == 0 ? 0 : 100.0 * cold / cold_attempts);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 12",
              "committed hot/cold break-down (20 workers, 20% distributed)");
  std::printf("%-10s %7s %12s %11s %11s %13s %13s\n", "engine", "wl",
              "tput(tx/s)", "hot-share", "cold-share", "hot-commit%",
              "cold-commit%");
  for (char variant : {'A', 'B', 'C'}) {
    Row(p4db::core::EngineMode::kNoSwitch, variant, time);
    Row(p4db::core::EngineMode::kP4db, variant, time);
  }
  std::printf("\nhot-/cold-commit%% = committed / attempted within the "
              "class (abort pressure).\n");
  return 0;
}
