// Figure 15a/15b: varying the hot/cold transaction ratio (YCSB-A, 20%
// distributed, 20 workers/node). Throughput of No-Switch falls as more of
// the workload hits the hot set; P4DB's rises — crossing 50x speedup at
// 100% hot in the paper.

#include "bench_common.h"

namespace p4db::bench {
namespace {

RunOutput Run(core::EngineMode mode, double hot_fraction,
              const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wcfg.hot_txn_fraction = hot_fraction;
  wl::Ycsb workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     YcsbHotItems(wcfg, cfg.num_nodes), time);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 15a/15b",
              "throughput and speedup vs. %% of hot transactions (YCSB-A)");
  std::printf("%8s %14s %14s %10s %12s\n", "hot%", "NoSwitch(tx/s)",
              "P4DB(tx/s)", "speedup", "base-abort%");
  for (double hot : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const RunOutput base = Run(EngineMode::kNoSwitch, hot, time);
    const RunOutput p4 = Run(EngineMode::kP4db, hot, time);
    std::printf("%7.0f%% %14.0f %14.0f %9.2fx %11.1f%%\n", hot * 100,
                base.throughput, p4.throughput,
                Speedup(p4.throughput, base.throughput),
                base.metrics.AbortRate() * 100);
  }
  return 0;
}
