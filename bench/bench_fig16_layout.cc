// Figure 16: impact of the declustered data layout. For each of the three
// workloads, P4DB with the optimal layout vs. a random ("worst case")
// layout: throughput and average transaction latency as load grows.
// SmallBank benefits most (read-dependent writes); TPC-C barely moves
// (warm transactions are bounded by the cold sub-transactions).

#include <memory>

#include "bench_common.h"

namespace p4db::bench {
namespace {

struct WorkloadCase {
  const char* name;
  std::function<std::unique_ptr<wl::Workload>()> make;
  size_t hot_items;
};

void Sweep(const WorkloadCase& wc, const BenchTime& time) {
  PrintSectionHeader(std::string(wc.name) +
                     ": optimal vs random layout, growing load");
  std::printf("%8s %13s %13s %9s %12s %12s %11s %11s\n", "workers",
              "opt(tx/s)", "rand(tx/s)", "gain", "opt-lat(us)",
              "rand-lat(us)", "opt-multi%", "rand-mult%");
  for (uint16_t workers : {8, 12, 16, 20}) {
    RunOutput results[2];
    for (int i = 0; i < 2; ++i) {
      core::SystemConfig cfg = PaperCluster(core::EngineMode::kP4db);
      cfg.workers_per_node = workers;
      cfg.optimal_layout = (i == 0);
      auto workload = wc.make();
      results[i] = RunWorkload(cfg, workload.get(), 20000, wc.hot_items,
                               time);
    }
    const auto multi_share = [](const RunOutput& r) {
      return r.pipeline.txns_completed == 0
                 ? 0.0
                 : 100.0 * r.pipeline.multi_pass_txns /
                       r.pipeline.txns_completed;
    };
    std::printf("%8u %13.0f %13.0f %8.2fx %12.1f %12.1f %10.1f%% %10.1f%%\n",
                workers, results[0].throughput, results[1].throughput,
                Speedup(results[0].throughput, results[1].throughput),
                results[0].metrics.latency_all.Mean() / 1e3,
                results[1].metrics.latency_all.Mean() / 1e3,
                multi_share(results[0]), multi_share(results[1]));
  }
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db;
  using namespace p4db::bench;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 16", "optimal vs random data layout, all workloads");

  const uint16_t nodes = 8;
  const WorkloadCase cases[] = {
      {"YCSB-A",
       [] {
         wl::YcsbConfig cfg;
         cfg.variant = 'A';
         return std::make_unique<wl::Ycsb>(cfg);
       },
       YcsbHotItems(wl::YcsbConfig{}, nodes)},
      {"SmallBank",
       [] {
         wl::SmallBankConfig cfg;
         cfg.hot_accounts_per_node = 10;
         return std::make_unique<wl::SmallBank>(cfg);
       },
       SmallBankHotItems(wl::SmallBankConfig{}, nodes)},
      {"TPC-C",
       [] {
         wl::TpccConfig cfg;
         cfg.num_warehouses = 8;
         return std::make_unique<wl::Tpcc>(cfg);
       },
       kTpccHotItemBudget},
  };
  for (const WorkloadCase& wc : cases) Sweep(wc, time);
  return 0;
}
