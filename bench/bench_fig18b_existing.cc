// Figure 18b: P4DB vs. existing optimizations for distributed transactions
// and contention, on TPC-C with 8 warehouses:
//   Plain 2PL/2PC (80% remote)  ->  +Optimal partitioning (20% remote)
//   ->  +Chiller-style two-region execution  ->  P4DB.

#include "bench_common.h"

namespace p4db::bench {
namespace {

double Run(core::EngineMode mode, double remote, const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  wl::TpccConfig wcfg;
  wcfg.num_warehouses = 8;
  wcfg.remote_fraction = remote;
  wl::Tpcc workload(wcfg);
  return RunWorkload(cfg, &workload, 20000, kTpccHotItemBudget, time)
      .throughput;
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Figure 18b",
              "existing distributed-txn/contention optimizations vs P4DB "
              "(TPC-C, 8 warehouses)");

  struct Step {
    const char* name;
    EngineMode mode;
    double remote;
  };
  const Step steps[] = {
      {"Plain 2PL/2PC (80% remote)", EngineMode::kNoSwitch, 0.8},
      {"+Opt. partitioning (20% remote)", EngineMode::kNoSwitch, 0.2},
      {"+Chiller two-region", EngineMode::kChiller, 0.2},
      {"P4DB", EngineMode::kP4db, 0.2},
  };
  std::printf("%-34s %14s %10s\n", "configuration", "tput(tx/s)", "vs plain");
  double base = 0;
  for (const Step& s : steps) {
    const double tput = Run(s.mode, s.remote, time);
    if (base == 0) base = tput;
    std::printf("%-34s %14.0f %9.2fx\n", s.name, tput, Speedup(tput, base));
  }
  return 0;
}
