// Appendix A.4: P4DB's switch offloading composes with other
// concurrency-control classes. The same contended YCSB-A workload under
// 2PL and OCC, with and without the switch: the switch's gain is largely
// independent of the host protocol, because the hot set never reaches the
// host CC at all.

#include "bench_common.h"

namespace p4db::bench {
namespace {

RunOutput Run(core::EngineMode mode, core::CcProtocol protocol,
              const BenchTime& time) {
  core::SystemConfig cfg = PaperCluster(mode);
  cfg.cc_protocol = protocol;
  wl::YcsbConfig wcfg;
  wcfg.variant = 'A';
  wl::Ycsb workload(wcfg);
  return RunWorkload(cfg, &workload, 20000,
                     YcsbHotItems(wcfg, cfg.num_nodes), time);
}

}  // namespace
}  // namespace p4db::bench

int main() {
  using namespace p4db::bench;
  using p4db::core::CcProtocol;
  using p4db::core::EngineMode;
  const BenchTime time = BenchTime::FromEnv();
  PrintBanner("Appendix A.4",
              "host concurrency-control classes with and without the switch "
              "(YCSB-A)");
  std::printf("%-22s %14s %12s %10s\n", "configuration", "tput(tx/s)",
              "abort-rate", "speedup");
  struct Row {
    const char* name;
    EngineMode mode;
    CcProtocol protocol;
  };
  const Row rows[] = {
      {"No-Switch + 2PL", EngineMode::kNoSwitch, CcProtocol::k2pl},
      {"No-Switch + OCC", EngineMode::kNoSwitch, CcProtocol::kOcc},
      {"P4DB + 2PL", EngineMode::kP4db, CcProtocol::k2pl},
      {"P4DB + OCC", EngineMode::kP4db, CcProtocol::kOcc},
  };
  double base = 0;
  for (const Row& row : rows) {
    const RunOutput r = Run(row.mode, row.protocol, time);
    if (base == 0) base = r.throughput;
    std::printf("%-22s %14.0f %11.1f%% %9.2fx\n", row.name, r.throughput,
                r.metrics.AbortRate() * 100, Speedup(r.throughput, base));
  }
  return 0;
}
