// TPC-C on P4DB: warm transactions spanning switch-resident hot columns
// (warehouse.ytd, district.ytd, district.next_o_id, popular stock
// quantities) and node-resident cold data (customers, order inserts) —
// Section 6.2's extended 2PC in action.
//
// Build & run:   cmake --build build && ./build/examples/tpcc_cluster

#include <cstdio>

#include "core/engine.h"
#include "workload/tpcc.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

void RunWarehouses(uint32_t warehouses) {
  double tput[2] = {0, 0};
  core::TxnTimers breakdown{};
  uint64_t committed = 0;
  for (int i = 0; i < 2; ++i) {
    core::SystemConfig cfg;
    cfg.mode = i == 0 ? core::EngineMode::kNoSwitch : core::EngineMode::kP4db;
    cfg.num_nodes = 8;
    cfg.workers_per_node = 20;
    wl::TpccConfig tcfg;
    tcfg.num_warehouses = warehouses;
    wl::Tpcc tpcc(tcfg);
    core::Engine engine(cfg);
    engine.SetWorkload(&tpcc);
    engine.Offload(20000, 2000);
    const core::Metrics m = engine.Run(2 * kMillisecond, 10 * kMillisecond);
    tput[i] = m.Throughput(10 * kMillisecond);
    if (i == 1) {
      breakdown = m.breakdown;
      committed = m.committed;
    }
  }
  std::printf("%6u warehouses: No-Switch %8.0f tx/s | P4DB %8.0f tx/s | "
              "speedup %.2fx\n",
              warehouses, tput[0], tput[1], tput[1] / tput[0]);
  if (committed > 0) {
    const double n = static_cast<double>(committed);
    std::printf("                P4DB latency shares (us/txn): lock %.1f, "
                "remote %.1f, switch %.1f, local %.1f, commit %.1f\n",
                breakdown.lock_wait / n / 1e3,
                breakdown.remote_access / n / 1e3,
                breakdown.switch_access / n / 1e3,
                breakdown.local_work / n / 1e3, breakdown.commit / n / 1e3);
  }
}

void OrderIdWalkthrough() {
  std::printf("\nNewOrder close-up: the order id comes back from the "
              "switch's district counter\n");
  core::SystemConfig cfg;
  cfg.mode = core::EngineMode::kP4db;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;
  wl::TpccConfig tcfg;
  tcfg.num_warehouses = 8;
  wl::Tpcc tpcc(tcfg);
  core::Engine engine(cfg);
  engine.SetWorkload(&tpcc);
  engine.Offload(20000, 2000);

  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    db::Transaction txn = tpcc.MakeNewOrder(rng, 0);
    auto r = engine.ExecuteOnce(txn, 0);
    if (!r.ok()) continue;
    // Op #2 is the district.next_o_id increment (see Tpcc::MakeNewOrder);
    // op layout: 3 header ops + 2 per line (item read, stock decrement) +
    // 2 order/new_order inserts + 1 insert per line.
    std::printf("  NewOrder %d: switch assigned o_id=%lld, %zu order lines "
                "inserted on the host\n",
                i + 1, static_cast<long long>((*r)[2]),
                (txn.ops.size() - 5) / 3);
  }
  const db::Table& orders = engine.catalog().table(tpcc.order_table());
  std::printf("  order rows materialized: %zu\n", orders.materialized_rows());
}

}  // namespace

int main() {
  std::printf("TPC-C cluster: NewOrder+Payment, warm transactions, "
              "8 nodes x 20 workers, 20%% remote\n");
  for (uint32_t warehouses : {8u, 16u, 32u}) RunWarehouses(warehouses);
  OrderIdWalkthrough();
  return 0;
}
