// Multi-tenant switch partitioning (Appendix A.5): one P4DB switch hosts
// several tenants' hot sets under quotas, with register-level isolation and
// the appendix's two sharing policies compared by how many multi-pass
// transactions each one causes.
//
// Build & run:   cmake --build build && ./build/examples/multi_tenant

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/tenant.h"
#include "sim/simulator.h"
#include "switchsim/pipeline.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

double MultiPassShare(core::TenantManager::Policy policy) {
  sim::Simulator sim;
  sw::PipelineConfig cfg;
  cfg.num_stages = 8;
  cfg.regs_per_stage = 2;
  cfg.sram_bytes_per_stage = 64 * 8 * 2;  // 64 slots per array
  sw::Pipeline pipe(&sim, cfg);
  sw::ControlPlane cp(&pipe);
  core::TenantManager tm(&cp, policy);

  // Three tenants, 32 hot items each.
  std::vector<std::vector<sw::RegisterAddress>> items(3);
  for (int t = 0; t < 3; ++t) {
    auto id = tm.CreateTenant("tenant" + std::to_string(t), 32);
    if (!id.ok()) return -1;
    for (int i = 0; i < 32; ++i) {
      auto addr = tm.AllocateFor(*id);
      if (!addr.ok()) return -1;
      items[t].push_back(*addr);
    }
  }

  // Each tenant's transactions touch 4 of its own items; count how many
  // need more than one pipeline pass under this placement.
  Rng rng(11);
  int multi = 0;
  constexpr int kTxns = 3000;
  for (int i = 0; i < kTxns; ++i) {
    const int t = static_cast<int>(rng.NextRange(3));
    std::vector<sw::Instruction> instrs;
    for (int k = 0; k < 4; ++k) {
      sw::Instruction in;
      in.op = sw::OpCode::kAdd;
      in.addr = items[t][rng.NextRange(items[t].size())];
      in.operand = 1;
      instrs.push_back(in);
    }
    multi += sw::Pipeline::CountPasses(instrs) > 1;
  }
  return 100.0 * multi / kTxns;
}

}  // namespace

int main() {
  std::printf("Multi-tenant switch partitioning (3 tenants x 32 hot items, "
              "8 stages x 2 arrays)\n\n");
  const double isolated =
      MultiPassShare(core::TenantManager::Policy::kIsolatedArrays);
  const double spread =
      MultiPassShare(core::TenantManager::Policy::kSpreadAcrossArrays);
  std::printf("multi-pass transactions with ISOLATED arrays per tenant: "
              "%.1f%%\n",
              isolated);
  std::printf("multi-pass transactions with tenants SPREAD across arrays: "
              "%.1f%%\n",
              spread);
  std::printf("\nAppendix A.5's point: spreading each tenant over as many "
              "register arrays as\npossible reduces same-array conflicts — "
              "isolation is enforced per register\nslot either way "
              "(TenantManager::ValidateAccess).\n");
  return 0;
}
