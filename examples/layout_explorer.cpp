// Declustered storage model explorer (Section 4): builds the co-access
// graph for a SmallBank sample, runs the capacity-constrained max-cut,
// orders the partitions by dependency direction, and shows how the
// resulting layout turns would-be multi-pass transactions into single-pass
// ones — versus a random placement.
//
// Build & run:   cmake --build build && ./build/examples/layout_explorer

#include <cstdio>
#include <map>

#include "core/hotset.h"
#include "core/layout.h"
#include "core/partition_manager.h"
#include "switchsim/pipeline.h"
#include "workload/smallbank.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

double PredictSinglePassShare(const core::LayoutPlan& plan,
                              const std::vector<core::HotItem>& items,
                              const std::vector<db::Transaction>& sample,
                              const db::Catalog& catalog,
                              const sw::PipelineConfig& pipe) {
  // Install the plan into a scratch partition manager and dry-compile the
  // sample's hot transactions.
  core::PartitionManager pm(&catalog, &pipe);
  std::map<std::pair<int, int>, uint32_t> next_slot;
  for (const core::HotItem& item : items) {
    const auto arr = plan.arrays.at(item);
    const uint32_t slot = next_slot[{arr.stage, arr.reg}]++;
    pm.RegisterHotItem(item, sw::RegisterAddress{arr.stage, arr.reg, slot},
                       0);
  }
  uint64_t hot_txns = 0, single_pass = 0;
  for (db::Transaction txn : sample) {
    pm.Classify(&txn, 0);
    if (txn.cls != db::TxnClass::kHot) continue;
    auto compiled = pm.Compile(txn, {}, 0, 0);
    if (!compiled.ok()) continue;
    ++hot_txns;
    single_pass += compiled->predicted_passes == 1;
  }
  return hot_txns == 0 ? 0
                       : 100.0 * static_cast<double>(single_pass) /
                             static_cast<double>(hot_txns);
}

}  // namespace

int main() {
  std::printf("Declustered storage model explorer (SmallBank, 8 nodes, 10 "
              "hot accounts/node)\n\n");

  db::Catalog catalog(8);
  wl::SmallBankConfig scfg;
  scfg.hot_accounts_per_node = 10;
  wl::SmallBank bank(scfg);
  bank.Setup(&catalog);

  // 1. Sample the workload and detect the hot set (Section 3.1).
  const auto sample = bank.Sample(20000, 7, 8);
  core::HotSetDetector detector;
  for (const auto& txn : sample) detector.Observe(txn);
  const auto hot_items = detector.TopK(160);
  std::printf("step 1: sampled %zu txns, %zu distinct items, hot set = %zu "
              "items\n",
              sample.size(), detector.distinct_items(), hot_items.size());

  // 2. Build the access graph with directed dependency edges (Section 4.2).
  core::AccessGraph graph =
      core::HotSetDetector::BuildGraph(hot_items, sample);
  uint64_t directed = 0;
  for (const auto& e : graph.Edges()) directed += e.w.forward + e.w.backward;
  std::printf("step 2: access graph: %zu vertices, %zu edges, total weight "
              "%llu (%llu directed by read-dependent writes)\n",
              graph.num_vertices(), graph.Edges().size(),
              static_cast<unsigned long long>(graph.TotalWeight()),
              static_cast<unsigned long long>(directed));

  // 3. Max-cut + partition ordering => layout (Section 4.3).
  sw::PipelineConfig pipe;  // 20 stages x 4 register arrays
  core::LayoutPlanner planner(pipe);
  const core::LayoutPlan optimal = planner.PlanOptimal(graph, 13);
  const core::LayoutPlan random = planner.PlanRandom(graph, 13);
  std::printf("step 3: optimal layout: %.1f%% of co-access weight cut, "
              "violations: intra-array %llu, order %llu\n",
              100.0 * static_cast<double>(optimal.cut_weight) /
                  static_cast<double>(optimal.total_weight),
              static_cast<unsigned long long>(optimal.intra_part_weight),
              static_cast<unsigned long long>(
                  optimal.order_violation_weight));
  std::printf("        random layout:  %.1f%% cut, violations: intra-array "
              "%llu, order %llu\n",
              100.0 * static_cast<double>(random.cut_weight) /
                  static_cast<double>(random.total_weight),
              static_cast<unsigned long long>(random.intra_part_weight),
              static_cast<unsigned long long>(random.order_violation_weight));

  // 4. What that means for execution: predicted single-pass share.
  std::printf("step 4: predicted single-pass hot transactions:\n");
  std::printf("        optimal layout: %5.1f%%\n",
              PredictSinglePassShare(optimal, hot_items, sample, catalog,
                                     pipe));
  std::printf("        random layout:  %5.1f%%\n",
              PredictSinglePassShare(random, hot_items, sample, catalog,
                                     pipe));
  std::printf("\nsavings balances gravitate to early stages so Amalgamate's "
              "dependent credit\n(chk[b] += sav[a] + chk[a]) lands in a "
              "later stage and stays single-pass.\n");
  return 0;
}
