// Quickstart: bring up a simulated P4DB cluster, offload the YCSB hot set
// to the switch, run the workload, and compare against the No-Switch
// baseline — a miniature of the paper's Figure 1.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "workload/ycsb.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

double RunOnce(core::EngineMode mode) {
  core::SystemConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;

  wl::YcsbConfig ycsb_cfg;
  ycsb_cfg.variant = 'A';
  wl::Ycsb ycsb(ycsb_cfg);

  core::Engine engine(cfg);
  engine.SetWorkload(&ycsb);

  // Offline step (Section 3.1): sample the workload, detect the hot set,
  // compute the declustered layout, install it on the switch.
  const core::OffloadReport report = engine.Offload(
      /*sample_size=*/20000,
      /*max_hot_items=*/ycsb_cfg.hot_keys_per_node * cfg.num_nodes);
  std::printf("  [%s] offloaded %zu hot items (cut %llu/%llu co-accesses)\n",
              core::EngineModeName(mode), report.offloaded_hot_items,
              static_cast<unsigned long long>(report.plan.cut_weight),
              static_cast<unsigned long long>(report.plan.total_weight));

  const core::Metrics m = engine.Run(/*warmup=*/5 * kMillisecond,
                                     /*duration=*/20 * kMillisecond);
  std::printf(
      "  [%s] %.2f M txn/s | abort rate %.1f%% | p50 latency %.1f us\n",
      core::EngineModeName(mode), m.Throughput(20 * kMillisecond) / 1e6,
      m.AbortRate() * 100.0,
      static_cast<double>(m.latency_all.Quantile(0.5)) / 1e3);
  return m.Throughput(20 * kMillisecond);
}

}  // namespace

int main() {
  std::printf("P4DB quickstart: YCSB-A, 8 nodes x 20 workers, 20%% "
              "distributed\n");
  const double base = RunOnce(core::EngineMode::kNoSwitch);
  const double p4db = RunOnce(core::EngineMode::kP4db);
  std::printf("=> P4DB speedup over No-Switch: %.2fx\n", p4db / base);
  return 0;
}
