// Durability & recovery demo (Section 6.1, Appendix A.3): switch state is
// rebuilt from the nodes' write-ahead logs after a power cycle, including
// the Figure 9 scenario where a node and the switch fail together and an
// in-flight transaction's serial position must be inferred from the
// read/write-sets recorded by the surviving nodes.
//
// Build & run:   cmake --build build && ./build/examples/recovery_demo

#include <cstdio>

#include "core/engine.h"
#include "core/recovery.h"
#include "workload/ycsb.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

void FullClusterRecovery() {
  std::printf("Part 1: switch power cycle after a real workload\n");
  wl::YcsbConfig ycfg;
  ycfg.variant = 'A';
  ycfg.table_size = 1000000;
  ycfg.hot_keys_per_node = 10;
  wl::Ycsb ycsb(ycfg);

  core::SystemConfig cfg;
  cfg.mode = core::EngineMode::kP4db;
  cfg.num_nodes = 4;
  cfg.workers_per_node = 4;
  core::Engine engine(cfg);
  engine.SetWorkload(&ycsb);
  engine.Offload(5000, 40);
  const core::Metrics m = engine.Run(kMillisecond, 3 * kMillisecond);

  size_t intents = 0;
  for (NodeId n = 0; n < 4; ++n) {
    intents += engine.wal(n).SwitchIntents().size();
  }
  std::printf("  ran %llu txns; %zu switch intents across 4 node WALs; "
              "switch GID counter at %llu\n",
              static_cast<unsigned long long>(m.committed), intents,
              static_cast<unsigned long long>(engine.pipeline().next_gid()));

  const auto before = engine.control_plane().DumpState();
  engine.SimulateSwitchCrash();
  std::printf("  switch crashed: %zu registers wiped\n", before.size());
  const Status st = engine.RecoverSwitch();
  std::printf("  recovery: %s\n", st.ToString().c_str());
  size_t restored = 0;
  const auto after = engine.control_plane().DumpState();
  for (size_t i = 0; i < before.size(); ++i) {
    restored += (after[i].second == before[i].second);
  }
  std::printf("  %zu/%zu registers restored bit-exactly (the rest were only "
              "touched by unacknowledged in-flight txns)\n",
              restored, before.size());
}

void Figure9Scenario() {
  std::printf("\nPart 2: the Figure 9 scenario, scripted\n");
  std::printf("  switch starts with x=1; T1 (x+=2, node 1) is in-flight "
              "because node 1 crashed;\n  T2 (x+=3, node 2) committed with "
              "gid 1 and recorded result x=6.\n");

  // Minimal rig: one hot item, two node WALs.
  sim::Simulator sim;
  sw::PipelineConfig pcfg;
  pcfg.num_stages = 4;
  pcfg.regs_per_stage = 1;
  pcfg.sram_bytes_per_stage = 256;
  sw::Pipeline pipe(&sim, pcfg);
  sw::ControlPlane cp(&pipe);
  db::Catalog catalog(2);
  const TableId t = catalog.CreateTable("t", 1, db::PartitionSpec{});
  core::PartitionManager pm(&catalog, &pcfg);

  const auto addr = cp.AllocateSlot(0, 0);
  (void)cp.InstallValue(*addr, 1);
  pm.RegisterHotItem(core::HotItem{TupleId{t, 0}, 0}, *addr, 1);

  sw::Instruction add2;
  add2.op = sw::OpCode::kAdd;
  add2.addr = *addr;
  add2.operand = 2;
  sw::Instruction add3 = add2;
  add3.operand = 3;

  db::Wal wal1, wal2;
  wal1.AppendSwitchIntent(1, {add2});  // T1: intent logged, gid never filled
  const db::Lsn l2 = wal2.AppendSwitchIntent(1, {add3});
  wal2.FillSwitchResult(l2, 1, {6});  // T2 observed 6 => T1 ran first

  cp.Reset();
  const Status st =
      core::RecoverSwitchState(pm, {&wal1, &wal2}, &cp);
  std::printf("  recovery: %s; x restored to %lld (T1 placed BEFORE T2 "
              "because T2's logged result 6 = 1+2+3)\n",
              st.ToString().c_str(),
              static_cast<long long>(*cp.ReadValue(*addr)));
}

}  // namespace

int main() {
  FullClusterRecovery();
  Figure9Scenario();
  return 0;
}
