// SmallBank on P4DB: the paper's motivating scenario of a banking workload
// whose handful of celebrity accounts melt a classical distributed DBMS.
//
// The example walks through the full P4DB lifecycle:
//   1. schema setup and hot-set detection from a workload sample,
//   2. declustered layout + offload of the hot balances to the switch,
//   3. a contended run, compared against the No-Switch baseline,
//   4. a direct look at one Amalgamate executing as a single-pass switch
//      transaction (two drains + a dependent credit in one pipeline pass).
//
// Build & run:   cmake --build build && ./build/examples/bank_accelerator

#include <cstdio>

#include "core/engine.h"
#include "workload/smallbank.h"

using namespace p4db;  // NOLINT: example brevity

namespace {

core::SystemConfig Cluster(core::EngineMode mode) {
  core::SystemConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 20;
  return cfg;
}

void RunContended(core::EngineMode mode) {
  wl::SmallBankConfig scfg;
  scfg.hot_accounts_per_node = 5;  // the paper's most contended setting
  wl::SmallBank bank(scfg);

  core::Engine engine(Cluster(mode));
  engine.SetWorkload(&bank);
  const auto report = engine.Offload(
      20000, 2ull * scfg.hot_accounts_per_node * 8);
  const core::Metrics m = engine.Run(2 * kMillisecond, 10 * kMillisecond);

  std::printf("  [%s] %.2f M txn/s, abort rate %.1f%%\n",
              core::EngineModeName(mode),
              m.Throughput(10 * kMillisecond) / 1e6, m.AbortRate() * 100);
  std::printf("      committed: hot %llu, cold %llu (hot set: %zu switch "
              "registers)\n",
              static_cast<unsigned long long>(m.committed_by_class[0]),
              static_cast<unsigned long long>(m.committed_by_class[1]),
              report.offloaded_hot_items);
  if (mode == core::EngineMode::kP4db) {
    const auto& p = engine.pipeline().stats();
    std::printf("      switch: %llu txns, %.1f%% single-pass\n",
                static_cast<unsigned long long>(p.txns_completed),
                p.txns_completed == 0
                    ? 0
                    : 100.0 * p.single_pass_txns / p.txns_completed);
  }
}

void AmalgamateCloseUp() {
  std::printf("\nOne Amalgamate under the microscope (account 1 -> 2, both "
              "hot):\n");
  wl::SmallBankConfig scfg;
  scfg.hot_accounts_per_node = 5;
  wl::SmallBank bank(scfg);
  core::Engine engine(Cluster(core::EngineMode::kP4db));
  engine.SetWorkload(&bank);
  engine.Offload(20000, 80);

  const auto compiled = engine.partition_manager().Compile(
      bank.Make(wl::SmallBank::kAmalgamate, 1, 2, 0), {}, 0, 0);
  if (compiled.ok()) {
    for (size_t i = 0; i < compiled->txn.instrs.size(); ++i) {
      std::printf("  instr %zu: %s\n", i,
                  sw::ToString(compiled->txn.instrs[i]).c_str());
    }
    std::printf("  predicted pipeline passes: %u%s\n",
                compiled->predicted_passes,
                compiled->predicted_passes == 1 ? " (single-pass, lock-free)"
                                                : "");
  }
  auto result =
      engine.ExecuteOnce(bank.Make(wl::SmallBank::kAmalgamate, 1, 2, 0), 0);
  if (result.ok()) {
    std::printf("  drained savings=%lld and checking=%lld from account 1; "
                "account 2's checking is now %lld\n",
                static_cast<long long>((*result)[0]),
                static_cast<long long>((*result)[1]),
                static_cast<long long>((*result)[2]));
  }
}

}  // namespace

int main() {
  std::printf("SmallBank bank accelerator: 8 nodes x 20 workers, 5 hot "
              "accounts/node (90%% of traffic)\n");
  RunContended(core::EngineMode::kNoSwitch);
  RunContended(core::EngineMode::kP4db);
  AmalgamateCloseUp();
  return 0;
}
